package embench

import (
	"testing"

	"repro/internal/cpu"
)

const memSize = 1 << 20

func TestAllBenchmarksSelfCheck(t *testing.T) {
	for _, b := range All {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			img, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			c := cpu.New(memSize)
			c.Load(img)
			halt := c.Run(100_000_000)
			if halt != cpu.HaltExit {
				t.Fatalf("halt = %v (%s) pc=%#x", halt, c.FaultMsg, c.PC)
			}
			if c.ExitCode != 0 {
				t.Fatalf("self-check failed: exit=%d", c.ExitCode)
			}
			t.Logf("%s: %d instructions, %d cycles", b.Name, c.Instret, c.Cycles)
			if c.Instret < 500 {
				t.Errorf("%s is suspiciously short (%d instructions)", b.Name, c.Instret)
			}
		})
	}
}

func TestFPUBenchmarksUseFPU(t *testing.T) {
	for _, b := range All {
		img, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		rec := &cpu.RecordingFPU{}
		c := cpu.New(memSize)
		c.FPU = rec
		c.Load(img)
		c.Run(100_000_000)
		if b.UsesFPU && len(rec.Trace) == 0 {
			t.Errorf("%s is marked UsesFPU but issued no FPU ops", b.Name)
		}
		if !b.UsesFPU && len(rec.Trace) > 0 {
			t.Errorf("%s is not marked UsesFPU but issued %d FPU ops", b.Name, len(rec.Trace))
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("crc32"); !ok {
		t.Error("crc32 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("phantom benchmark")
	}
}

func TestDeterministicImages(t *testing.T) {
	for _, b := range All {
		i1, err1 := b.Build()
		i2, err2 := b.Build()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s build: %v / %v", b.Name, err1, err2)
		}
		if len(i1.Words) != len(i2.Words) {
			t.Fatalf("%s nondeterministic size", b.Name)
		}
		for k := range i1.Words {
			if i1.Words[k] != i2.Words[k] {
				t.Fatalf("%s nondeterministic at word %d", b.Name, k)
			}
		}
	}
}
