// Package embench provides an embench-iot-style workload suite for the
// simulated CPU: small, self-checking kernels covering the mix the real
// benchmark set exercises — integer arithmetic, bit manipulation, memory
// traversal, state machines, and floating point. They serve as the
// representative workloads for Signal Probability Simulation (§3.2.1)
// and as the applications instrumented in the overhead evaluation
// (Figure 9).
//
// Every program self-checks: it computes a result, compares it against
// the expected value (computed by the generator in Go with the same
// algorithm), and exits 0 on success and 1 on mismatch.
package embench

import "repro/internal/isa"

// Benchmark is one workload. Build assembles the program from scratch on
// every call; an assembly error is returned, not panicked, so callers
// embedding campaign-generated payloads alongside a workload can fail one
// run instead of the process.
type Benchmark struct {
	Name    string
	UsesFPU bool
	Build   func() (*isa.Image, error)
}

// All lists the suite in a stable order.
var All = []Benchmark{
	{Name: "crc32", Build: crc32Bench},
	{Name: "matmult-int", Build: matmultBench},
	{Name: "minver", UsesFPU: true, Build: minverBench},
	{Name: "edn", Build: ednBench},
	{Name: "primecount", Build: primeBench},
	{Name: "ud", Build: udBench},
	{Name: "st", UsesFPU: true, Build: stBench},
	{Name: "nbody", UsesFPU: true, Build: nbodyBench},
	{Name: "fir", Build: firBench},
	{Name: "huffbench", Build: huffBench},
	{Name: "statemate", Build: statemateBench},
	{Name: "slre", Build: slreBench},
	{Name: "tarfind", Build: tarfindBench},
	{Name: "qrduino", Build: qrduinoBench},
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// beginRepeat/endRepeat wrap a kernel in the embench-style outer harness
// loop: k timed iterations of the (idempotent) kernel body. The outer
// block is exactly the "routinely but not frequently executed" site the
// profile-guided integration looks for.
func beginRepeat(a *isa.Asm, k uint32) {
	a.Li(isa.S9, k)
	a.Label("vega_outer")
}

func endRepeat(a *isa.Asm) {
	a.Addi(isa.S9, isa.S9, -1)
	a.Bnez(isa.S9, "vega_outer")
}

// exitCheck emits the standard epilogue: compare a0 against want; exit 0
// on match, 1 otherwise.
func exitCheck(a *isa.Asm, want uint32) {
	a.Li(isa.T0, want)
	a.Beq(isa.A0, isa.T0, "bench_pass")
	a.Li(isa.A0, 1)
	a.Ecall()
	a.Label("bench_pass")
	a.Li(isa.A0, 0)
	a.Ecall()
}

// --- crc32: bitwise CRC-32 (poly 0xEDB88320) over a pseudo-random
// buffer.

func crcData(n int) []byte {
	buf := make([]byte, n)
	x := uint32(0x12345678)
	for i := range buf {
		x = x*1664525 + 1013904223
		buf[i] = byte(x >> 24)
	}
	return buf
}

func crc32Ref(buf []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range buf {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

func crc32Bench() (*isa.Image, error) {
	const n = 1024
	buf := crcData(n)
	a := isa.NewAsm()
	a.Bytes("buf", buf)
	a.La(isa.S0, "buf")
	beginRepeat(a, 8)
	a.Li(isa.S2, n)
	a.Li(isa.A0, 0xffffffff) // crc
	a.Li(isa.S3, 0xEDB88320)
	a.Li(isa.S4, 0) // i
	a.Label("byte_loop")
	a.Add(isa.T1, isa.S0, isa.S4)
	a.Lbu(isa.T1, 0, isa.T1)
	a.Xor(isa.A0, isa.A0, isa.T1)
	a.Li(isa.T2, 8) // k
	a.Label("bit_loop")
	a.Andi(isa.T3, isa.A0, 1)
	a.Srli(isa.A0, isa.A0, 1)
	a.Beqz(isa.T3, "no_poly")
	a.Xor(isa.A0, isa.A0, isa.S3)
	a.Label("no_poly")
	a.Addi(isa.T2, isa.T2, -1)
	a.Bnez(isa.T2, "bit_loop")
	a.Addi(isa.S4, isa.S4, 1)
	a.Bne(isa.S4, isa.S2, "byte_loop")
	a.Xori(isa.A0, isa.A0, -1)
	endRepeat(a)
	exitCheck(a, crc32Ref(buf))
	return a.Assemble()
}

// --- matmult-int: C = A*B for 8x8 int32 matrices, FNV-style checksum.

func matmultBench() (*isa.Image, error) {
	const n = 8
	var A, B [n * n]uint32
	x := uint32(7)
	for i := range A {
		x = x*48271 + 1
		A[i] = x % 64
		x = x*48271 + 1
		B[i] = x % 64
	}
	// Reference.
	var sum uint32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += A[i*n+k] * B[k*n+j]
			}
			sum = sum*31 + acc
		}
	}

	a := isa.NewAsm()
	a.Word("ma", A[:]...)
	a.Word("mb", B[:]...)
	a.La(isa.S0, "ma")
	a.La(isa.S1, "mb")
	beginRepeat(a, 16)
	a.Li(isa.A0, 0) // checksum
	a.Li(isa.S2, 0) // i
	a.Label("i_loop")
	a.Li(isa.S3, 0) // j
	a.Label("j_loop")
	a.Li(isa.S4, 0) // k
	a.Li(isa.S5, 0) // acc
	a.Label("k_loop")
	// A[i*n+k]
	a.Slli(isa.T0, isa.S2, 3)
	a.Add(isa.T0, isa.T0, isa.S4)
	a.Slli(isa.T0, isa.T0, 2)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Lw(isa.T0, 0, isa.T0)
	// B[k*n+j]
	a.Slli(isa.T1, isa.S4, 3)
	a.Add(isa.T1, isa.T1, isa.S3)
	a.Slli(isa.T1, isa.T1, 2)
	a.Add(isa.T1, isa.T1, isa.S1)
	a.Lw(isa.T1, 0, isa.T1)
	a.Mul(isa.T2, isa.T0, isa.T1)
	a.Add(isa.S5, isa.S5, isa.T2)
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T3, n)
	a.Bne(isa.S4, isa.T3, "k_loop")
	// sum = sum*31 + acc
	a.Li(isa.T3, 31)
	a.Mul(isa.A0, isa.A0, isa.T3)
	a.Add(isa.A0, isa.A0, isa.S5)
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T3, n)
	a.Bne(isa.S3, isa.T3, "j_loop")
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T3, n)
	a.Bne(isa.S2, isa.T3, "i_loop")
	endRepeat(a)
	exitCheck(a, sum)
	return a.Assemble()
}

// --- primecount: sieve of Eratosthenes, count primes below N.

func primeBench() (*isa.Image, error) {
	const n = 1200
	sieve := make([]bool, n)
	count := uint32(0)
	for i := 2; i < n; i++ {
		if !sieve[i] {
			count++
			for j := i * i; j < n; j += i {
				sieve[j] = true
			}
		}
	}

	a := isa.NewAsm()
	a.Space("sieve", n)
	a.La(isa.S0, "sieve")
	beginRepeat(a, 16)
	a.Li(isa.A0, 0) // count
	a.Li(isa.S2, 2) // i
	a.Li(isa.S3, n)
	a.Label("i_loop")
	a.Add(isa.T0, isa.S0, isa.S2)
	a.Lbu(isa.T0, 0, isa.T0)
	a.Bnez(isa.T0, "next_i")
	a.Addi(isa.A0, isa.A0, 1)
	a.Mul(isa.T1, isa.S2, isa.S2) // j = i*i
	a.Bge(isa.T1, isa.S3, "next_i")
	a.Li(isa.T2, 1)
	a.Label("j_loop")
	a.Add(isa.T3, isa.S0, isa.T1)
	a.Sb(isa.T2, 0, isa.T3)
	a.Add(isa.T1, isa.T1, isa.S2)
	a.Blt(isa.T1, isa.S3, "j_loop")
	a.Label("next_i")
	a.Addi(isa.S2, isa.S2, 1)
	a.Bne(isa.S2, isa.S3, "i_loop")
	endRepeat(a)
	exitCheck(a, count)
	return a.Assemble()
}

// --- fir: integer FIR filter, 16 taps over 200 samples.

func firBench() (*isa.Image, error) {
	const taps = 16
	const samples = 400
	coef := make([]uint32, taps)
	in := make([]uint32, samples)
	x := uint32(3)
	for i := range coef {
		x = x*134775813 + 1
		coef[i] = x % 32
	}
	for i := range in {
		x = x*134775813 + 1
		in[i] = x % 256
	}
	var sum uint32
	for i := taps; i < samples; i++ {
		var acc uint32
		for k := 0; k < taps; k++ {
			acc += coef[k] * in[i-k]
		}
		sum ^= acc + uint32(i)
	}

	a := isa.NewAsm()
	a.Word("coef", coef...)
	a.Word("input", in...)
	a.La(isa.S0, "coef")
	a.La(isa.S1, "input")
	beginRepeat(a, 4)
	a.Li(isa.A0, 0)
	a.Li(isa.S2, taps) // i
	a.Label("i_loop")
	a.Li(isa.S4, 0) // k
	a.Li(isa.S5, 0) // acc
	a.Label("k_loop")
	a.Slli(isa.T0, isa.S4, 2)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Lw(isa.T0, 0, isa.T0) // coef[k]
	a.Sub(isa.T1, isa.S2, isa.S4)
	a.Slli(isa.T1, isa.T1, 2)
	a.Add(isa.T1, isa.T1, isa.S1)
	a.Lw(isa.T1, 0, isa.T1) // in[i-k]
	a.Mul(isa.T2, isa.T0, isa.T1)
	a.Add(isa.S5, isa.S5, isa.T2)
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T3, taps)
	a.Bne(isa.S4, isa.T3, "k_loop")
	a.Add(isa.T0, isa.S5, isa.S2)
	a.Xor(isa.A0, isa.A0, isa.T0)
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T3, samples)
	a.Bne(isa.S2, isa.T3, "i_loop")
	endRepeat(a)
	exitCheck(a, sum)
	return a.Assemble()
}

// --- edn: vector "energy detection" kernel: dot products with shifts
// and saturation-style clamping.

func ednBench() (*isa.Image, error) {
	const n = 512
	va := make([]uint32, n)
	vb := make([]uint32, n)
	x := uint32(0xbeef)
	for i := range va {
		x = x*22695477 + 1
		va[i] = x >> 16 & 0x7fff
		x = x*22695477 + 1
		vb[i] = x >> 16 & 0x7fff
	}
	var acc uint32
	for i := 0; i < n; i++ {
		p := va[i] * vb[i]
		p = p >> 3
		if p > 0xffff {
			p = 0xffff
		}
		acc = acc<<1 | acc>>31
		acc ^= p
	}

	a := isa.NewAsm()
	a.Word("va", va...)
	a.Word("vb", vb...)
	a.La(isa.S0, "va")
	a.La(isa.S1, "vb")
	beginRepeat(a, 16)
	a.Li(isa.A0, 0)
	a.Li(isa.S2, 0)
	a.Li(isa.S3, 0xffff)
	a.Label("loop")
	a.Slli(isa.T0, isa.S2, 2)
	a.Add(isa.T1, isa.T0, isa.S0)
	a.Lw(isa.T1, 0, isa.T1)
	a.Add(isa.T2, isa.T0, isa.S1)
	a.Lw(isa.T2, 0, isa.T2)
	a.Mul(isa.T3, isa.T1, isa.T2)
	a.Srli(isa.T3, isa.T3, 3)
	a.Bltu(isa.T3, isa.S3, "no_clamp")
	a.Mv(isa.T3, isa.S3)
	a.Label("no_clamp")
	a.Slli(isa.T4, isa.A0, 1)
	a.Srli(isa.T5, isa.A0, 31)
	a.Or(isa.A0, isa.T4, isa.T5)
	a.Xor(isa.A0, isa.A0, isa.T3)
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S2, isa.T6, "loop")
	endRepeat(a)
	exitCheck(a, acc)
	return a.Assemble()
}

// --- ud: integer LU-style elimination on a small matrix with exact
// divisions, checksum of the residue.

func udBench() (*isa.Image, error) {
	const n = 6
	var m [n][n]int64
	x := uint32(17)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x = x*69069 + 1
			m[i][j] = int64(x%19) + 1
			if i == j {
				m[i][j] += 40
			}
		}
	}
	ref := func() uint32 {
		w := m
		for k := 0; k < n-1; k++ {
			for i := k + 1; i < n; i++ {
				f := w[i][k] / w[k][k]
				for j := k; j < n; j++ {
					w[i][j] -= f * w[k][j]
				}
			}
		}
		var s uint32
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s = s*131 + uint32(int32(w[i][j]))
			}
		}
		return s
	}()

	flat := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			flat[i*n+j] = uint32(int32(m[i][j]))
		}
	}
	a := isa.NewAsm()
	a.Word("mat", flat...)
	a.La(isa.S0, "mat")
	beginRepeat(a, 32)
	idx := func(dst, row, col isa.Reg) { // dst = &mat[row*n+col]
		a.Li(isa.T6, n)
		a.Mul(dst, row, isa.T6)
		a.Add(dst, dst, col)
		a.Slli(dst, dst, 2)
		a.Add(dst, dst, isa.S0)
	}
	a.Li(isa.S2, 0) // k
	a.Label("k_loop")
	a.Addi(isa.S3, isa.S2, 1) // i
	a.Label("i_loop")
	idx(isa.T0, isa.S3, isa.S2)
	a.Lw(isa.T1, 0, isa.T0) // m[i][k]
	idx(isa.T0, isa.S2, isa.S2)
	a.Lw(isa.T2, 0, isa.T0) // m[k][k]
	a.Div(isa.S4, isa.T1, isa.T2)
	a.Mv(isa.S5, isa.S2) // j
	a.Label("j_loop")
	idx(isa.T0, isa.S2, isa.S5)
	a.Lw(isa.T1, 0, isa.T0) // m[k][j]
	a.Mul(isa.T1, isa.T1, isa.S4)
	idx(isa.T0, isa.S3, isa.S5)
	a.Lw(isa.T2, 0, isa.T0)
	a.Sub(isa.T2, isa.T2, isa.T1)
	a.Sw(isa.T2, 0, isa.T0)
	a.Addi(isa.S5, isa.S5, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S5, isa.T6, "j_loop")
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S3, isa.T6, "i_loop")
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T6, n-1)
	a.Bne(isa.S2, isa.T6, "k_loop")
	// checksum
	a.Li(isa.A0, 0)
	a.Li(isa.S2, 0)
	a.Label("cks")
	a.Slli(isa.T0, isa.S2, 2)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Lw(isa.T0, 0, isa.T0)
	a.Li(isa.T1, 131)
	a.Mul(isa.A0, isa.A0, isa.T1)
	a.Add(isa.A0, isa.A0, isa.T0)
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T1, n*n)
	a.Bne(isa.S2, isa.T1, "cks")
	endRepeat(a)
	exitCheck(a, ref)
	return a.Assemble()
}

// --- huffbench: bit-packing encode loop (variable-length codes).

func huffBench() (*isa.Image, error) {
	const n = 400
	syms := make([]uint32, n)
	x := uint32(0x51ab)
	for i := range syms {
		x = x*25173 + 13849
		syms[i] = x >> 13 & 7
	}
	// Code: symbol s gets code of length s+1 with value (1<<s)-ish.
	var acc, bits, sum uint32
	for _, s := range syms {
		code := (uint32(1) << s) | (s & 1)
		length := s + 1
		acc = acc<<length | code
		bits += length
		if bits >= 16 {
			sum = sum*65599 + (acc & 0xffff)
			bits -= 16
		}
	}
	want := sum*65599 + acc + bits

	a := isa.NewAsm()
	a.Word("syms", syms...)
	a.La(isa.S0, "syms")
	beginRepeat(a, 16)
	a.Li(isa.S2, 0) // acc
	a.Li(isa.S3, 0) // bits
	a.Li(isa.A0, 0) // sum
	a.Li(isa.S4, 0) // i
	a.Label("loop")
	a.Slli(isa.T0, isa.S4, 2)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Lw(isa.T1, 0, isa.T0) // s
	a.Li(isa.T2, 1)
	a.Sll(isa.T2, isa.T2, isa.T1) // 1<<s
	a.Andi(isa.T3, isa.T1, 1)
	a.Or(isa.T2, isa.T2, isa.T3) // code
	a.Addi(isa.T4, isa.T1, 1)    // length
	a.Sll(isa.S2, isa.S2, isa.T4)
	a.Or(isa.S2, isa.S2, isa.T2)
	a.Add(isa.S3, isa.S3, isa.T4)
	a.Li(isa.T5, 16)
	a.Blt(isa.S3, isa.T5, "no_flush")
	a.Li(isa.T5, 65599)
	a.Mul(isa.A0, isa.A0, isa.T5)
	a.Li(isa.T5, 0xffff)
	a.And(isa.T6, isa.S2, isa.T5)
	a.Add(isa.A0, isa.A0, isa.T6)
	a.Addi(isa.S3, isa.S3, -16)
	a.Label("no_flush")
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S4, isa.T6, "loop")
	a.Li(isa.T5, 65599)
	a.Mul(isa.A0, isa.A0, isa.T5)
	a.Add(isa.A0, isa.A0, isa.S2)
	a.Add(isa.A0, isa.A0, isa.S3)
	endRepeat(a)
	exitCheck(a, want)
	return a.Assemble()
}

// --- statemate: a branchy finite-state machine over a pseudo-random
// input tape.

func statemateBench() (*isa.Image, error) {
	const n = 600
	tape := make([]uint32, n)
	x := uint32(0xfeed)
	for i := range tape {
		x = x*1103515245 + 12345
		tape[i] = x >> 9 & 3
	}
	state, visits := uint32(0), uint32(0)
	for _, ev := range tape {
		switch state {
		case 0:
			if ev == 1 {
				state = 1
			} else if ev == 3 {
				state = 2
			}
		case 1:
			if ev == 0 {
				state = 3
			} else {
				state = 2
			}
		case 2:
			visits += 3
			if ev == 2 {
				state = 0
			}
		case 3:
			visits++
			state = ev
		}
		visits = visits*2 + state
	}

	a := isa.NewAsm()
	a.Word("tape", tape...)
	a.La(isa.S0, "tape")
	beginRepeat(a, 16)
	a.Li(isa.S2, 0) // state
	a.Li(isa.A0, 0) // visits
	a.Li(isa.S4, 0) // i
	a.Label("loop")
	a.Slli(isa.T0, isa.S4, 2)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Lw(isa.T1, 0, isa.T0) // ev
	// dispatch on state
	a.Beqz(isa.S2, "st0")
	a.Li(isa.T2, 1)
	a.Beq(isa.S2, isa.T2, "st1")
	a.Li(isa.T2, 2)
	a.Beq(isa.S2, isa.T2, "st2")
	// state 3
	a.Addi(isa.A0, isa.A0, 1)
	a.Mv(isa.S2, isa.T1)
	a.J("after")
	a.Label("st0")
	a.Li(isa.T2, 1)
	a.Bne(isa.T1, isa.T2, "st0_b")
	a.Li(isa.S2, 1)
	a.J("after")
	a.Label("st0_b")
	a.Li(isa.T2, 3)
	a.Bne(isa.T1, isa.T2, "after")
	a.Li(isa.S2, 2)
	a.J("after")
	a.Label("st1")
	a.Bnez(isa.T1, "st1_b")
	a.Li(isa.S2, 3)
	a.J("after")
	a.Label("st1_b")
	a.Li(isa.S2, 2)
	a.J("after")
	a.Label("st2")
	a.Addi(isa.A0, isa.A0, 3)
	a.Li(isa.T2, 2)
	a.Bne(isa.T1, isa.T2, "after")
	a.Li(isa.S2, 0)
	a.Label("after")
	a.Slli(isa.A0, isa.A0, 1)
	a.Add(isa.A0, isa.A0, isa.S2)
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S4, isa.T6, "loop")
	endRepeat(a)
	exitCheck(a, visits)
	return a.Assemble()
}

// --- slre: byte-pattern matcher (find occurrences of a short pattern
// with one wildcard).

func slreBench() (*isa.Image, error) {
	const n = 800
	text := make([]byte, n)
	x := uint32(0x5eed)
	for i := range text {
		x = x*48271 + 7
		text[i] = byte('a' + x%4)
	}
	pat := []byte{'a', 'b', 0, 'c'} // 0 = wildcard
	matches := uint32(0)
	for i := 0; i+len(pat) <= n; i++ {
		ok := true
		for k, p := range pat {
			if p != 0 && text[i+k] != p {
				ok = false
				break
			}
		}
		if ok {
			matches++
		}
	}

	a := isa.NewAsm()
	a.Bytes("text", text)
	a.Bytes("pat", pat)
	a.La(isa.S0, "text")
	a.La(isa.S1, "pat")
	beginRepeat(a, 16)
	a.Li(isa.A0, 0)
	a.Li(isa.S2, 0) // i
	a.Label("i_loop")
	a.Li(isa.S4, 0) // k
	a.Label("k_loop")
	a.Add(isa.T0, isa.S1, isa.S4)
	a.Lbu(isa.T1, 0, isa.T0) // p
	a.Beqz(isa.T1, "wild")
	a.Add(isa.T0, isa.S0, isa.S2)
	a.Add(isa.T0, isa.T0, isa.S4)
	a.Lbu(isa.T2, 0, isa.T0)
	a.Bne(isa.T1, isa.T2, "no_match")
	a.Label("wild")
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T6, int64len(pat))
	a.Bne(isa.S4, isa.T6, "k_loop")
	a.Addi(isa.A0, isa.A0, 1)
	a.Label("no_match")
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T6, n-int64len(pat)+1)
	a.Bne(isa.S2, isa.T6, "i_loop")
	endRepeat(a)
	exitCheck(a, matches)
	return a.Assemble()
}

func int64len(b []byte) uint32 { return uint32(len(b)) }

// --- tarfind: scan fixed-size records for a name match (header
// comparisons).

func tarfindBench() (*isa.Image, error) {
	const rec = 16
	const count = 128
	data := make([]byte, rec*count)
	x := uint32(0x7a12)
	for i := range data {
		x = x*134775813 + 1
		data[i] = byte('A' + x%8)
	}
	// Plant a few matches.
	name := []byte("DEADBEEF")
	for _, at := range []int{5, 23, 61} {
		copy(data[at*rec:], name)
	}
	found := uint32(0)
	for r := 0; r < count; r++ {
		ok := true
		for k := range name {
			if data[r*rec+k] != name[k] {
				ok = false
				break
			}
		}
		if ok {
			found = found*7 + uint32(r)
		}
	}

	a := isa.NewAsm()
	a.Bytes("arch", data)
	a.Bytes("name", name)
	a.La(isa.S0, "arch")
	a.La(isa.S1, "name")
	beginRepeat(a, 32)
	a.Li(isa.A0, 0)
	a.Li(isa.S2, 0) // r
	a.Label("r_loop")
	a.Li(isa.S4, 0) // k
	a.Label("k_loop")
	a.Li(isa.T0, rec)
	a.Mul(isa.T0, isa.T0, isa.S2)
	a.Add(isa.T0, isa.T0, isa.S4)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Lbu(isa.T1, 0, isa.T0)
	a.Add(isa.T2, isa.S1, isa.S4)
	a.Lbu(isa.T2, 0, isa.T2)
	a.Bne(isa.T1, isa.T2, "next_r")
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T6, int64len(name))
	a.Bne(isa.S4, isa.T6, "k_loop")
	a.Li(isa.T0, 7)
	a.Mul(isa.A0, isa.A0, isa.T0)
	a.Add(isa.A0, isa.A0, isa.S2)
	a.Label("next_r")
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T6, count)
	a.Bne(isa.S2, isa.T6, "r_loop")
	endRepeat(a)
	exitCheck(a, found)
	return a.Assemble()
}

// --- qrduino: GF(2^8) polynomial multiply-accumulate (Reed-Solomon
// style).

func qrduinoBench() (*isa.Image, error) {
	const n = 96
	msg := make([]uint32, n)
	x := uint32(0x33cc)
	for i := range msg {
		x = x*22695477 + 1
		msg[i] = x >> 20 & 0xff
	}
	gfmul := func(a, b uint32) uint32 {
		var p uint32
		for i := 0; i < 8; i++ {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a = a << 1 & 0xff
			if hi != 0 {
				a ^= 0x1d
			}
			b >>= 1
		}
		return p
	}
	var acc uint32
	for i, m := range msg {
		acc = gfmul(acc, 2) ^ gfmul(m, uint32(i%7)+1)
		acc &= 0xff
	}

	a := isa.NewAsm()
	a.Word("msg", msg...)
	// gfmul(a0=a, a1=b) -> a0, clobbers t0-t3
	a.J("main")
	a.Label("gfmul")
	a.Li(isa.T0, 0) // p
	a.Li(isa.T1, 8) // i
	a.Label("gf_loop")
	a.Andi(isa.T2, isa.A1, 1)
	a.Beqz(isa.T2, "gf_nop")
	a.Xor(isa.T0, isa.T0, isa.A0)
	a.Label("gf_nop")
	a.Andi(isa.T3, isa.A0, 0x80)
	a.Slli(isa.A0, isa.A0, 1)
	a.Andi(isa.A0, isa.A0, 0xff)
	a.Beqz(isa.T3, "gf_nored")
	a.Xori(isa.A0, isa.A0, 0x1d)
	a.Label("gf_nored")
	a.Srli(isa.A1, isa.A1, 1)
	a.Addi(isa.T1, isa.T1, -1)
	a.Bnez(isa.T1, "gf_loop")
	a.Mv(isa.A0, isa.T0)
	a.Ret()
	a.Label("main")
	a.La(isa.S0, "msg")
	beginRepeat(a, 16)
	a.Li(isa.S2, 0) // acc
	a.Li(isa.S3, 0) // i
	a.Label("loop")
	a.Mv(isa.A0, isa.S2)
	a.Li(isa.A1, 2)
	a.Call("gfmul")
	a.Mv(isa.S4, isa.A0) // gfmul(acc,2)
	a.Slli(isa.T4, isa.S3, 2)
	a.Add(isa.T4, isa.T4, isa.S0)
	a.Lw(isa.A0, 0, isa.T4) // m
	a.Li(isa.T5, 7)
	a.Remu(isa.A1, isa.S3, isa.T5)
	a.Addi(isa.A1, isa.A1, 1)
	a.Call("gfmul")
	a.Xor(isa.S2, isa.S4, isa.A0)
	a.Andi(isa.S2, isa.S2, 0xff)
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S3, isa.T6, "loop")
	endRepeat(a)
	a.Mv(isa.A0, isa.S2)
	exitCheck(a, acc)
	return a.Assemble()
}
