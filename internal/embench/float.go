package embench

import (
	"math"

	"repro/internal/isa"
)

// f32 arithmetic helpers for the Go-side references: Go's float32
// operations are correctly rounded, matching the simulated FPU
// bit-exactly.
func fbits(f float32) uint32 { return math.Float32bits(f) }

// --- minver: 3x3 matrix inversion by adjugate/determinant — the paper's
// representative workload for the ALU/FPU SP profile.

type mat3 [9]float32

// minverRef mirrors the assembly: 4 harness iterations over a bank of
// matrices, rotating the checksum between inversions.
func minverRef(bank []mat3) uint32 {
	var acc uint32
	for iter := 0; iter < 16; iter++ {
		for k := range bank {
			acc = acc<<1 | acc>>31
			acc ^= minverOnce(bank[k]) + uint32(iter)
		}
	}
	return acc
}

func minverOnce(m mat3) uint32 {
	c0 := m[4]*m[8] - m[5]*m[7]
	c1 := m[3]*m[8] - m[5]*m[6]
	c2 := m[3]*m[7] - m[4]*m[6]
	det := m[0]*c0 - m[1]*c1 + m[2]*c2
	inv := mat3{
		c0, -(m[1]*m[8] - m[2]*m[7]), m[1]*m[5] - m[2]*m[4],
		-c1, m[0]*m[8] - m[2]*m[6], -(m[0]*m[5] - m[2]*m[3]),
		c2, -(m[0]*m[7] - m[1]*m[6]), m[0]*m[4] - m[1]*m[3],
	}
	var sum uint32
	for i := range inv {
		v := inv[i] / det
		sum ^= fbits(v) + uint32(i)
	}
	return sum
}

// matBank generates well-conditioned small matrices.
func matBank(n int) []mat3 {
	bank := make([]mat3, n)
	x := uint32(0x1357)
	for k := range bank {
		for i := 0; i < 9; i++ {
			x = x*48271 + 11
			bank[k][i] = float32(x%9) + 1
			if i%4 == 0 {
				bank[k][i] += 12 // diagonally dominant: det != 0
			}
		}
	}
	return bank
}

func minverBench() (*isa.Image, error) {
	bank := matBank(16)
	want := minverRef(bank)

	var bits []uint32
	for _, m := range bank {
		for _, v := range m {
			bits = append(bits, fbits(v))
		}
	}
	a := isa.NewAsm()
	a.Word("bank", bits...)
	a.La(isa.S0, "bank")
	a.Li(isa.S7, 0) // harness iteration
	a.Li(isa.S8, 0) // checksum accumulator
	a.Label("iter_loop")
	a.Li(isa.S10, 0) // matrix index
	a.Label("mat_loop")
	// S6 = &bank[S10] (36 bytes per matrix)
	a.Li(isa.T0, 36)
	a.Mul(isa.T0, isa.T0, isa.S10)
	a.Add(isa.S6, isa.T0, isa.S0)
	// Load the matrix into f1..f9 (m[0]..m[8]).
	for i := 0; i < 9; i++ {
		a.Flw(isa.Reg(1+i), int32(4*i), isa.S6)
	}
	// Register plan: f10..f12 cofactors c0,c1,c2; f13 det; f14-f15 temps;
	// f16..f24 inverse numerators.
	mul := func(rd, x, y int) { a.Fmul(isa.Reg(rd), isa.Reg(x), isa.Reg(y)) }
	sub := func(rd, x, y int) { a.Fsub(isa.Reg(rd), isa.Reg(x), isa.Reg(y)) }
	neg := func(rd, x int) { a.Fsgnjn(isa.Reg(rd), isa.Reg(x), isa.Reg(x)) }
	cof := func(rd, i, j, k, l int) {
		mul(14, i, j)
		mul(15, k, l)
		sub(rd, 14, 15)
	}
	cof(10, 5, 9, 6, 8) // c0
	cof(11, 4, 9, 6, 7) // c1
	cof(12, 4, 8, 5, 7) // c2
	mul(14, 1, 10)
	mul(15, 2, 11)
	sub(13, 14, 15)
	mul(14, 3, 12)
	a.Fadd(13, 13, 14) // det
	a.Fsgnj(16, 10, 10)
	cof(17, 2, 9, 3, 8)
	neg(17, 17)
	cof(18, 2, 6, 3, 5)
	neg(19, 11)
	cof(20, 1, 9, 3, 7)
	cof(21, 1, 6, 3, 4)
	neg(21, 21)
	a.Fsgnj(22, 12, 12)
	cof(23, 1, 8, 2, 7)
	neg(23, 23)
	cof(24, 1, 5, 2, 4)
	// per-matrix checksum in a0
	a.Li(isa.A0, 0)
	for i := 0; i < 9; i++ {
		a.Fdiv(25, isa.Reg(16+i), 13)
		a.FmvXW(isa.T1, 25)
		a.Addi(isa.T1, isa.T1, int32(i))
		a.Xor(isa.A0, isa.A0, isa.T1)
	}
	// acc = rol(acc,1) ^ (sum + iter)
	a.Slli(isa.T1, isa.S8, 1)
	a.Srli(isa.T2, isa.S8, 31)
	a.Or(isa.S8, isa.T1, isa.T2)
	a.Add(isa.A0, isa.A0, isa.S7)
	a.Xor(isa.S8, isa.S8, isa.A0)
	a.Addi(isa.S10, isa.S10, 1)
	a.Li(isa.T6, 16)
	a.Bne(isa.S10, isa.T6, "mat_loop")
	a.Addi(isa.S7, isa.S7, 1)
	a.Li(isa.T6, 16)
	a.Bne(isa.S7, isa.T6, "iter_loop")
	a.Mv(isa.A0, isa.S8)
	exitCheck(a, want)
	return a.Assemble()
}

// --- st: statistics kernel — mean, variance and correlation-style
// accumulations over a float array.

func stBench() (*isa.Image, error) {
	const n = 256
	vals := make([]float32, n)
	x := uint32(0xabcd)
	for i := range vals {
		x = x*22695477 + 1
		vals[i] = float32(x%1000) / 8
	}
	var sum, sumSq float32
	for _, v := range vals {
		sum = sum + v
		sumSq = sumSq + v*v
	}
	mean := sum / float32(n)
	variance := (sumSq - sum*mean) / float32(n-1)
	want := fbits(mean) ^ fbits(variance)

	bits := make([]uint32, n)
	for i, v := range vals {
		bits[i] = fbits(v)
	}
	a := isa.NewAsm()
	a.Word("vals", bits...)
	a.La(isa.S0, "vals")
	beginRepeat(a, 32)
	a.FliBits(1, 0, isa.T0) // sum
	a.FliBits(2, 0, isa.T0) // sumSq
	a.Li(isa.S2, 0)
	a.Label("loop")
	a.Slli(isa.T0, isa.S2, 2)
	a.Add(isa.T0, isa.T0, isa.S0)
	a.Flw(3, 0, isa.T0)
	a.Fadd(1, 1, 3)
	a.Fmul(4, 3, 3)
	a.Fadd(2, 2, 4)
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T6, n)
	a.Bne(isa.S2, isa.T6, "loop")
	a.FliBits(5, fbits(float32(n)), isa.T0)
	a.Fdiv(6, 1, 5) // mean
	a.Fmul(7, 1, 6) // sum*mean
	a.Fsub(8, 2, 7)
	a.FliBits(9, fbits(float32(n-1)), isa.T0)
	a.Fdiv(10, 8, 9) // variance
	a.FmvXW(isa.T1, 6)
	a.FmvXW(isa.T2, 10)
	a.Xor(isa.A0, isa.T1, isa.T2)
	endRepeat(a)
	exitCheck(a, want)
	return a.Assemble()
}

// --- nbody: a 2-D three-body gravity kernel, a few explicit Euler
// steps.

func nbodyBench() (*isa.Image, error) {
	type body struct{ px, py, vx, vy float32 }
	bodies := []body{
		{0, 0, 0.1, -0.2},
		{1.5, 0.5, -0.05, 0.1},
		{-0.75, 1.25, 0.02, 0.03},
		{0.25, -1.5, 0.07, 0.01},
		{-1.25, -0.5, -0.03, 0.08},
		{2.0, 1.75, 0.01, -0.06},
	}
	const steps = 64
	const dt = float32(0.0625) // power of two: keeps rounding tame
	ref := func() uint32 {
		bs := append([]body(nil), bodies...)
		for s := 0; s < steps; s++ {
			for i := range bs {
				var ax, ay float32
				for j := range bs {
					if i == j {
						continue
					}
					dx := bs[j].px - bs[i].px
					dy := bs[j].py - bs[i].py
					d2 := dx*dx + dy*dy + 0.25
					inv := 1 / d2
					ax = ax + dx*inv
					ay = ay + dy*inv
				}
				bs[i].vx = bs[i].vx + ax*dt
				bs[i].vy = bs[i].vy + ay*dt
			}
			for i := range bs {
				bs[i].px = bs[i].px + bs[i].vx*dt
				bs[i].py = bs[i].py + bs[i].vy*dt
			}
		}
		var sum uint32
		for i := range bs {
			sum ^= fbits(bs[i].px) + fbits(bs[i].py) + uint32(i)
		}
		return sum
	}()

	// Memory layout: per body px,py,vx,vy (4 words).
	words := make([]uint32, 0, len(bodies)*4)
	for _, b := range bodies {
		words = append(words, fbits(b.px), fbits(b.py), fbits(b.vx), fbits(b.vy))
	}
	a := isa.NewAsm()
	nb := uint32(len(bodies))
	a.Word("bodies", words...)
	a.La(isa.S0, "bodies")
	a.FliBits(28, fbits(dt), isa.T0)   // dt
	a.FliBits(29, fbits(0.25), isa.T0) // softening
	a.FliBits(30, fbits(1.0), isa.T0)
	a.Li(isa.S2, 0) // step
	a.Label("step_loop")
	a.Li(isa.S3, 0) // i
	a.Label("i_loop")
	// load body i pos into f1,f2; velocity f3,f4
	a.Slli(isa.T0, isa.S3, 4)
	a.Add(isa.S6, isa.T0, isa.S0) // &body[i]
	a.Flw(1, 0, isa.S6)
	a.Flw(2, 4, isa.S6)
	a.Flw(3, 8, isa.S6)
	a.Flw(4, 12, isa.S6)
	a.FliBits(5, 0, isa.T0) // ax
	a.FliBits(6, 0, isa.T0) // ay
	a.Li(isa.S4, 0)         // j
	a.Label("j_loop")
	a.Beq(isa.S4, isa.S3, "skip_self")
	a.Slli(isa.T0, isa.S4, 4)
	a.Add(isa.T1, isa.T0, isa.S0)
	a.Flw(7, 0, isa.T1)
	a.Flw(8, 4, isa.T1)
	a.Fsub(9, 7, 1)  // dx
	a.Fsub(10, 8, 2) // dy
	a.Fmul(11, 9, 9) // dx2
	a.Fmul(12, 10, 10)
	a.Fadd(11, 11, 12)
	a.Fadd(11, 11, 29) // d2
	a.Fdiv(12, 30, 11) // inv
	a.Fmul(13, 9, 12)
	a.Fadd(5, 5, 13)
	a.Fmul(13, 10, 12)
	a.Fadd(6, 6, 13)
	a.Label("skip_self")
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T6, nb)
	a.Bne(isa.S4, isa.T6, "j_loop")
	// v += a*dt
	a.Fmul(13, 5, 28)
	a.Fadd(3, 3, 13)
	a.Fmul(13, 6, 28)
	a.Fadd(4, 4, 13)
	a.Fsw(3, 8, isa.S6)
	a.Fsw(4, 12, isa.S6)
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T6, nb)
	a.Bne(isa.S3, isa.T6, "i_loop")
	// position update pass
	a.Li(isa.S3, 0)
	a.Label("p_loop")
	a.Slli(isa.T0, isa.S3, 4)
	a.Add(isa.S6, isa.T0, isa.S0)
	a.Flw(1, 0, isa.S6)
	a.Flw(2, 4, isa.S6)
	a.Flw(3, 8, isa.S6)
	a.Flw(4, 12, isa.S6)
	a.Fmul(13, 3, 28)
	a.Fadd(1, 1, 13)
	a.Fmul(13, 4, 28)
	a.Fadd(2, 2, 13)
	a.Fsw(1, 0, isa.S6)
	a.Fsw(2, 4, isa.S6)
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T6, nb)
	a.Bne(isa.S3, isa.T6, "p_loop")
	a.Addi(isa.S2, isa.S2, 1)
	a.Li(isa.T6, steps)
	a.Bne(isa.S2, isa.T6, "step_loop")
	// checksum
	a.Li(isa.A0, 0)
	a.Li(isa.S3, 0)
	a.Label("cks")
	a.Slli(isa.T0, isa.S3, 4)
	a.Add(isa.S6, isa.T0, isa.S0)
	a.Lw(isa.T1, 0, isa.S6)
	a.Lw(isa.T2, 4, isa.S6)
	a.Add(isa.T1, isa.T1, isa.T2)
	a.Add(isa.T1, isa.T1, isa.S3)
	a.Xor(isa.A0, isa.A0, isa.T1)
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T6, nb)
	a.Bne(isa.S3, isa.T6, "cks")
	exitCheck(a, ref)
	return a.Assemble()
}
