package synth

import "repro/internal/netlist"

// FullAdder returns (sum, carry) for a+b+cin using the classic two-XOR,
// two-AND, one-OR decomposition.
func (c *C) FullAdder(a, b, cin netlist.NetID) (sum, cout netlist.NetID) {
	axb := c.Xor(a, b)
	sum = c.Xor(axb, cin)
	cout = c.Or(c.And(a, b), c.And(axb, cin))
	return sum, cout
}

// Adder returns a+b+cin as (sum, carryOut) with a ripple-carry chain. The
// buses must have equal width.
func (c *C) Adder(a, b Bus, cin netlist.NetID) (Bus, netlist.NetID) {
	if len(a) != len(b) {
		panic("synth: adder width mismatch")
	}
	sum := make(Bus, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = c.FullAdder(a[i], b[i], carry)
	}
	return sum, carry
}

// Sub returns a-b as (diff, carryOut). carryOut is the "no borrow" flag:
// 1 when a >= b in the unsigned sense.
func (c *C) Sub(a, b Bus) (Bus, netlist.NetID) {
	return c.Adder(a, c.NotBus(b), c.One())
}

// Inc returns a+1 (dropping the final carry).
func (c *C) Inc(a Bus) Bus {
	s, _ := c.Adder(a, c.Const(len(a), 0), c.One())
	return s
}

// Neg returns the two's complement of a.
func (c *C) Neg(a Bus) Bus { return c.Inc(c.NotBus(a)) }

// LtU returns 1 iff a < b, unsigned.
func (c *C) LtU(a, b Bus) netlist.NetID {
	_, noBorrow := c.Sub(a, b)
	return c.Not(noBorrow)
}

// LtS returns 1 iff a < b as two's-complement signed values.
func (c *C) LtS(a, b Bus) netlist.NetID {
	n := len(a)
	ltu := c.LtU(a, b)
	sa, sb := a[n-1], b[n-1]
	diffSign := c.Xor(sa, sb)
	// Same signs: unsigned compare is correct. Different signs: a<b iff a
	// is the negative one.
	return c.Mux(diffSign, ltu, sa)
}

// ShiftLeft returns a << sh (logical) for a shift amount bus sh; bits
// shifted in are zero. Shift amounts >= len(a) yield zero when sh is wide
// enough to express them.
func (c *C) ShiftLeft(a Bus, sh Bus) Bus {
	cur := append(Bus(nil), a...)
	for k, s := range sh {
		shifted := make(Bus, len(a))
		amt := 1 << uint(k)
		for i := range shifted {
			if i >= amt {
				shifted[i] = cur[i-amt]
			} else {
				shifted[i] = c.Zero()
			}
		}
		cur = c.MuxBus(s, cur, shifted)
	}
	return cur
}

// ShiftRightL returns a >> sh with zero fill.
func (c *C) ShiftRightL(a Bus, sh Bus) Bus { return c.shiftRight(a, sh, c.Zero()) }

// ShiftRightA returns a >> sh with sign fill.
func (c *C) ShiftRightA(a Bus, sh Bus) Bus { return c.shiftRight(a, sh, a[len(a)-1]) }

func (c *C) shiftRight(a Bus, sh Bus, fill netlist.NetID) Bus {
	cur := append(Bus(nil), a...)
	for k, s := range sh {
		shifted := make(Bus, len(a))
		amt := 1 << uint(k)
		for i := range shifted {
			if i+amt < len(a) {
				shifted[i] = cur[i+amt]
			} else {
				shifted[i] = fill
			}
		}
		cur = c.MuxBus(s, cur, shifted)
	}
	return cur
}

// ShiftRightJam returns a >> sh with the sticky ("jam") convention used
// by floating-point alignment: every bit shifted out is ORed into bit 0 of
// the result. Shift amounts >= len(a) reduce the bus to its OR.
func (c *C) ShiftRightJam(a Bus, sh Bus) Bus {
	cur := append(Bus(nil), a...)
	sticky := c.Zero()
	for k, s := range sh {
		amt := 1 << uint(k)
		shifted := make(Bus, len(a))
		for i := range shifted {
			if i+amt < len(a) {
				shifted[i] = cur[i+amt]
			} else {
				shifted[i] = c.Zero()
			}
		}
		var dropped Bus
		for i := 0; i < amt && i < len(a); i++ {
			dropped = append(dropped, cur[i])
		}
		stickyIf := c.Or(sticky, c.OrReduce(dropped))
		sticky = c.Mux(s, sticky, stickyIf)
		cur = c.MuxBus(s, cur, shifted)
	}
	cur[0] = c.Or(cur[0], sticky)
	return cur
}

// RotateLeft returns a rotated left by sh bits.
func (c *C) RotateLeft(a Bus, sh Bus) Bus {
	cur := append(Bus(nil), a...)
	n := len(a)
	for k, s := range sh {
		amt := (1 << uint(k)) % n
		rot := make(Bus, n)
		for i := range rot {
			rot[i] = cur[((i-amt)%n+n)%n]
		}
		cur = c.MuxBus(s, cur, rot)
	}
	return cur
}

// Mul returns the full-width unsigned product a*b (len(a)+len(b) bits)
// using a shift-and-add array of ripple adders — the layout a synthesis
// tool would pick for a small area target.
func (c *C) Mul(a, b Bus) Bus {
	w := len(a) + len(b)
	acc := c.Const(w, 0)
	for i, bi := range b {
		pp := make(Bus, w)
		for j := range pp {
			if j >= i && j-i < len(a) {
				pp[j] = c.And(a[j-i], bi)
			} else {
				pp[j] = c.Zero()
			}
		}
		acc, _ = c.Adder(acc, pp, c.Zero())
	}
	return acc
}

// LZC returns the leading-zero count of a as a minimal-width bus, plus an
// "all zero" flag. Bit order: a[len-1] is the leading (most significant)
// bit.
func (c *C) LZC(a Bus) (count Bus, allZero netlist.NetID) {
	width := 1
	for 1<<uint(width) < len(a)+1 {
		width++
	}
	// Priority scan: walk from LSB to MSB so that the most significant
	// set bit provides the final count.
	cnt := c.Const(width, uint64(len(a))) // all-zero case
	for i := 0; i < len(a); i++ {
		cnt = c.MuxBus(a[i], cnt, c.Const(width, uint64(len(a)-1-i)))
	}
	return cnt, c.IsZero(a)
}

// OnesCount returns the population count of a.
func (c *C) OnesCount(a Bus) Bus {
	width := 1
	for 1<<uint(width) < len(a)+1 {
		width++
	}
	acc := c.Const(width, 0)
	for _, bit := range a {
		one := c.ZeroExtend(Bus{bit}, width)
		acc, _ = c.Adder(acc, one, c.Zero())
	}
	return acc
}

// AdderCSel returns a+b+cin as a carry-select adder: the bus is split
// into blocks; each block computes both carry-in hypotheses in parallel
// and a mux chain picks the real ones. Shorter critical path than the
// ripple adder at roughly twice the area — the standard
// timing-vs-area knob a synthesis tool turns when a ripple adder misses
// timing.
func (c *C) AdderCSel(a, b Bus, cin netlist.NetID, blockSize int) (Bus, netlist.NetID) {
	if len(a) != len(b) {
		panic("synth: adder width mismatch")
	}
	if blockSize < 1 {
		blockSize = 4
	}
	sum := make(Bus, len(a))
	carry := cin
	for lo := 0; lo < len(a); lo += blockSize {
		hi := lo + blockSize
		if hi > len(a) {
			hi = len(a)
		}
		if lo == 0 {
			// First block: the real carry-in is available immediately.
			s, co := c.Adder(a[lo:hi], b[lo:hi], carry)
			copy(sum[lo:hi], s)
			carry = co
			continue
		}
		s0, c0 := c.Adder(a[lo:hi], b[lo:hi], c.Zero())
		s1, c1 := c.Adder(a[lo:hi], b[lo:hi], c.One())
		copy(sum[lo:hi], c.MuxBus(carry, s0, s1))
		carry = c.Mux(carry, c0, c1)
	}
	return sum, carry
}
