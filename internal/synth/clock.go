package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// ClockTree is a buffered clock-distribution network: a balanced binary
// tree of CLKBUF cells from the module's clock root down to 2^depth leaf
// nets that flip-flops connect to. Subtrees can be clock-gated, which is
// the paper's mechanism for asymmetric aging of the clock network
// (§2.3.1): a gated-off subtree idles low, putting its buffers under
// maximal BTI stress and skewing the tree after aging.
type ClockTree struct {
	Root   netlist.NetID
	Leaves []netlist.NetID
	// BufferChain[i] lists the clock-cell CellIDs from the root to leaf i,
	// in order. STA uses it to compute per-leaf clock arrival times.
	BufferChain [][]netlist.CellID
	// GateCell[i] is the CLKGATE on leaf i's branch, or NoCell when the
	// branch is ungated. Instrumentation uses it to rewire enables.
	GateCell []netlist.CellID
}

// ClockTreeOption configures ClockTree construction.
type ClockTreeOption func(*clockTreeConfig)

type clockTreeConfig struct {
	gates     map[int]netlist.NetID // leaf index -> enable net
	leafChain int                   // buffers appended below every leaf
}

// WithLeafChain appends n CLKBUFs below every leaf (after the clock gate
// on gated branches). Real trees carry several levels of local buffering
// under each gate; because P&R balances nominal insertion delay across
// all branches, the chains are equal-length everywhere — but on gated
// branches they idle low and age faster, which is what turns a balanced
// tree into a skewed one (§2.3.1).
func WithLeafChain(n int) ClockTreeOption {
	return func(c *clockTreeConfig) { c.leafChain = n }
}

// WithLeafGate inserts a CLKGATE (instead of the final CLKBUF) on the
// branch feeding the given leaf, controlled by enable.
func WithLeafGate(leaf int, enable netlist.NetID) ClockTreeOption {
	return func(c *clockTreeConfig) {
		if c.gates == nil {
			c.gates = make(map[int]netlist.NetID)
		}
		c.gates[leaf] = enable
	}
}

// BuildClockTree creates a depth-level buffered tree under root and
// returns the leaf clock nets. depth 0 returns the root itself as the
// single leaf.
func (c *C) BuildClockTree(root netlist.NetID, depth int, opts ...ClockTreeOption) *ClockTree {
	var cfg clockTreeConfig
	for _, o := range opts {
		o(&cfg)
	}
	t := &ClockTree{Root: root}
	if depth == 0 {
		t.Leaves = Bus{root}
		t.BufferChain = [][]netlist.CellID{nil}
		t.GateCell = []netlist.CellID{netlist.NoCell}
		return t
	}
	type node struct {
		net   netlist.NetID
		chain []netlist.CellID
		gate  netlist.CellID
	}
	level := []node{{net: root, gate: netlist.NoCell}}
	for d := 0; d < depth; d++ {
		last := d == depth-1
		next := make([]node, 0, len(level)*2)
		for i, parent := range level {
			for side := 0; side < 2; side++ {
				leafIdx := i*2 + side
				var out netlist.NetID
				gate := parent.gate
				name := fmt.Sprintf("CLKBUF$L%d_%d", d+1, leafIdx)
				if en, ok := cfg.gates[leafIdx]; last && ok {
					name = fmt.Sprintf("CLKGATE$L%d_%d", d+1, leafIdx)
					out = c.B.AddNamed(cell.CLKGATE, name, parent.net, en)
					gate = netlist.CellID(c.B.NumCells() - 1)
				} else {
					out = c.B.AddNamed(cell.CLKBUF, name, parent.net)
				}
				cellID := netlist.CellID(c.B.NumCells() - 1)
				chain := append(append([]netlist.CellID(nil), parent.chain...), cellID)
				next = append(next, node{net: out, chain: chain, gate: gate})
			}
		}
		level = next
	}
	for i, n := range level {
		net, chain := n.net, n.chain
		for j := 0; j < cfg.leafChain; j++ {
			net = c.B.AddNamed(cell.CLKBUF, fmt.Sprintf("CLKBUF$C%d_%d", i, j), net)
			chain = append(chain, netlist.CellID(c.B.NumCells()-1))
		}
		t.Leaves = append(t.Leaves, net)
		t.BufferChain = append(t.BufferChain, chain)
		t.GateCell = append(t.GateCell, n.gate)
	}
	return t
}
