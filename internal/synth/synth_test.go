package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildBinop synthesizes a combinational module out = f(a, b) with the
// given widths and returns a simulator for it.
func buildBinop(t *testing.T, wa, wb int, f func(c *C, a, b Bus) Bus) *sim.Simulator {
	t.Helper()
	b := netlist.NewBuilder("dut")
	c := NewC(b)
	a := b.InputBus("a", wa)
	bb := b.InputBus("b", wb)
	out := f(c, a, bb)
	b.OutputBus("out", out)
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return sim.New(nl)
}

func evalBinop(s *sim.Simulator, a, b uint64) uint64 {
	s.SetInput("a", a)
	s.SetInput("b", b)
	return s.Output("out")
}

func TestAdder32(t *testing.T) {
	s := buildBinop(t, 32, 32, func(c *C, a, b Bus) Bus {
		sum, cout := c.Adder(a, b, c.Zero())
		return append(append(Bus{}, sum...), cout)
	})
	f := func(a, b uint32) bool {
		got := evalBinop(s, uint64(a), uint64(b))
		want := uint64(a) + uint64(b)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSub32(t *testing.T) {
	s := buildBinop(t, 32, 32, func(c *C, a, b Bus) Bus {
		d, _ := c.Sub(a, b)
		return d
	})
	f := func(a, b uint32) bool {
		return evalBinop(s, uint64(a), uint64(b)) == uint64(a-b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompares(t *testing.T) {
	ltu := buildBinop(t, 16, 16, func(c *C, a, b Bus) Bus { return Bus{c.LtU(a, b)} })
	lts := buildBinop(t, 16, 16, func(c *C, a, b Bus) Bus { return Bus{c.LtS(a, b)} })
	eq := buildBinop(t, 16, 16, func(c *C, a, b Bus) Bus { return Bus{c.EqualBus(a, b)} })
	f := func(a, b uint16) bool {
		wantLtu := uint64(0)
		if a < b {
			wantLtu = 1
		}
		wantLts := uint64(0)
		if int16(a) < int16(b) {
			wantLts = 1
		}
		wantEq := uint64(0)
		if a == b {
			wantEq = 1
		}
		return evalBinop(ltu, uint64(a), uint64(b)) == wantLtu &&
			evalBinop(lts, uint64(a), uint64(b)) == wantLts &&
			evalBinop(eq, uint64(a), uint64(b)) == wantEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Edge cases quick.Check may miss.
	cases := [][2]uint16{{0, 0}, {0x8000, 0x7fff}, {0x7fff, 0x8000}, {0xffff, 0}, {5, 5}}
	for _, cse := range cases {
		if !f(cse[0], cse[1]) {
			t.Errorf("compare failed on %v", cse)
		}
	}
}

func TestShifts(t *testing.T) {
	mk := func(f func(c *C, a, sh Bus) Bus) *sim.Simulator {
		return buildBinop(t, 32, 5, func(c *C, a, b Bus) Bus { return f(c, a, b) })
	}
	sll := mk(func(c *C, a, sh Bus) Bus { return c.ShiftLeft(a, sh) })
	srl := mk(func(c *C, a, sh Bus) Bus { return c.ShiftRightL(a, sh) })
	sra := mk(func(c *C, a, sh Bus) Bus { return c.ShiftRightA(a, sh) })
	rol := mk(func(c *C, a, sh Bus) Bus { return c.RotateLeft(a, sh) })
	f := func(a uint32, shRaw uint8) bool {
		sh := uint(shRaw % 32)
		okSll := evalBinop(sll, uint64(a), uint64(sh)) == uint64(a<<sh)
		okSrl := evalBinop(srl, uint64(a), uint64(sh)) == uint64(a>>sh)
		okSra := evalBinop(sra, uint64(a), uint64(sh)) == uint64(uint32(int32(a)>>sh))
		wantRol := uint64(a)
		if sh != 0 {
			wantRol = uint64(a<<sh | a>>(32-sh))
		}
		okRol := evalBinop(rol, uint64(a), uint64(sh)) == wantRol
		return okSll && okSrl && okSra && okRol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMul16(t *testing.T) {
	s := buildBinop(t, 16, 16, func(c *C, a, b Bus) Bus { return c.Mul(a, b) })
	f := func(a, b uint16) bool {
		return evalBinop(s, uint64(a), uint64(b)) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLZC(t *testing.T) {
	s := buildBinop(t, 16, 1, func(c *C, a, b Bus) Bus {
		cnt, zero := c.LZC(a)
		return append(append(Bus{}, cnt...), zero)
	})
	lzc16 := func(x uint16) uint64 {
		n := uint64(0)
		for i := 15; i >= 0; i-- {
			if x>>uint(i)&1 == 1 {
				return n
			}
			n++
		}
		return 16
	}
	f := func(a uint16) bool {
		got := evalBinop(s, uint64(a), 0)
		cnt := got & 0x1f
		zero := got >> 5 & 1
		wantZero := uint64(0)
		if a == 0 {
			wantZero = 1
		}
		return cnt == lzc16(a) && zero == wantZero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	if !f(0) || !f(1) || !f(0x8000) || !f(0xffff) {
		t.Error("LZC edge cases failed")
	}
}

func TestOnesCount(t *testing.T) {
	s := buildBinop(t, 12, 1, func(c *C, a, b Bus) Bus { return c.OnesCount(a) })
	f := func(a uint16) bool {
		x := a & 0xfff
		want := uint64(0)
		for i := 0; i < 12; i++ {
			want += uint64(x >> uint(i) & 1)
		}
		return evalBinop(s, uint64(x), 0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderAndSelect(t *testing.T) {
	s := buildBinop(t, 2, 1, func(c *C, sel, _ Bus) Bus { return c.Decoder(sel) })
	for v := uint64(0); v < 4; v++ {
		if got := evalBinop(s, v, 0); got != 1<<v {
			t.Errorf("Decoder(%d) = %04b", v, got)
		}
	}
	s2 := buildBinop(t, 2, 8, func(c *C, sel, b Bus) Bus {
		oh := c.Decoder(sel)
		opts := []Bus{
			b[0:2], b[2:4], b[4:6], b[6:8],
		}
		return c.Select1H(oh, opts)
	})
	f := func(sel uint8, b uint8) bool {
		s := uint64(sel % 4)
		want := uint64(b) >> (2 * s) & 3
		return evalBinop(s2, s, uint64(b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantFolding(t *testing.T) {
	b := netlist.NewBuilder("fold")
	c := NewC(b)
	x := b.Input("x")
	// All of these should fold without creating gates beyond the ties.
	if c.And(x, c.Zero()) != c.Zero() {
		t.Error("And(x,0) != 0")
	}
	if c.And(x, c.One()) != x {
		t.Error("And(x,1) != x")
	}
	if c.Or(x, c.One()) != c.One() {
		t.Error("Or(x,1) != 1")
	}
	if c.Xor(x, c.Zero()) != x {
		t.Error("Xor(x,0) != x")
	}
	if c.Mux(c.One(), x, c.Zero()) != c.Zero() {
		t.Error("Mux(1,x,0) != 0")
	}
	if c.Mux(x, c.Zero(), c.One()) != x {
		t.Error("Mux(x,0,1) != x")
	}
	gates := 0
	for i := 0; i < b.NumCells(); i++ {
		k := b.Cell(netlist.CellID(i)).Kind
		if k != cell.TIE0 && k != cell.TIE1 && k != cell.INV {
			gates++
		}
	}
	if gates != 0 {
		t.Errorf("constant folding created %d gates", gates)
	}
}

func TestMuxBusAndExtend(t *testing.T) {
	s := buildBinop(t, 9, 8, func(c *C, a, b Bus) Bus {
		sel := a[8]
		return c.MuxBus(sel, a[0:8], b)
	})
	f := func(a, b, selRaw uint8) bool {
		sel := uint64(selRaw & 1)
		in := uint64(a) | sel<<8
		want := uint64(a)
		if sel == 1 {
			want = uint64(b)
		}
		return evalBinop(s, in, uint64(b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	se := buildBinop(t, 4, 1, func(c *C, a, _ Bus) Bus { return c.SignExtend(a, 8) })
	for v := uint64(0); v < 16; v++ {
		want := uint64(uint8(int8(v<<4) >> 4))
		if got := evalBinop(se, v, 0); got != want {
			t.Errorf("SignExtend(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestClockTreeShape(t *testing.T) {
	b := netlist.NewBuilder("clktree")
	c := NewC(b)
	clk := b.Clock("clk")
	en := b.Input("en")
	tree := c.BuildClockTree(clk, 3, WithLeafGate(5, en))
	// Hang a DFF on every leaf so the netlist validates.
	d := b.Input("d")
	var qs Bus
	for _, leaf := range tree.Leaves {
		qs = append(qs, b.AddDFF(d, leaf, false))
	}
	b.OutputBus("q", qs)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(tree.Leaves))
	}
	for i, chain := range tree.BufferChain {
		if len(chain) != 3 {
			t.Errorf("leaf %d chain depth %d, want 3", i, len(chain))
		}
	}
	if nl.CountKind(cell.CLKGATE) != 1 {
		t.Errorf("CLKGATE count = %d, want 1", nl.CountKind(cell.CLKGATE))
	}
	// 2+4+8 tree cells, one of which is the gate.
	if got := nl.CountKind(cell.CLKBUF); got != 13 {
		t.Errorf("CLKBUF count = %d, want 13", got)
	}

	// Functional: gated leaf holds state when en=0, others keep clocking.
	s := sim.New(nl)
	s.SetInput("en", 0)
	s.SetInput("d", 1)
	s.Step()
	q := s.Output("q")
	if q != 0xdf { // leaf 5 gated off
		t.Errorf("q = %02x, want df", q)
	}
	s.SetInput("en", 1)
	s.Step()
	if q := s.Output("q"); q != 0xff {
		t.Errorf("q = %02x, want ff", q)
	}
}

func TestReduceOps(t *testing.T) {
	s := buildBinop(t, 8, 1, func(c *C, a, _ Bus) Bus {
		return Bus{c.OrReduce(a), c.AndReduce(a), c.XorReduce(a), c.IsZero(a)}
	})
	f := func(a uint8) bool {
		got := evalBinop(s, uint64(a), 0)
		or := got & 1
		and := got >> 1 & 1
		xor := got >> 2 & 1
		zero := got >> 3 & 1
		wantOr, wantAnd, wantXor, wantZero := uint64(0), uint64(1), uint64(0), uint64(1)
		if a != 0 {
			wantOr, wantZero = 1, 0
		}
		if a != 0xff {
			wantAnd = 0
		}
		for i := 0; i < 8; i++ {
			wantXor ^= uint64(a >> uint(i) & 1)
		}
		return or == wantOr && and == wantAnd && xor == wantXor && zero == wantZero
	}
	for v := 0; v < 256; v++ {
		if !f(uint8(v)) {
			t.Fatalf("reduce ops wrong for %02x", v)
		}
	}
}

func TestAdderCSel(t *testing.T) {
	for _, bs := range []int{1, 3, 4, 8, 32, 64} {
		s := buildBinop(t, 32, 32, func(c *C, a, b Bus) Bus {
			sum, cout := c.AdderCSel(a, b, c.Zero(), bs)
			return append(append(Bus{}, sum...), cout)
		})
		f := func(a, b uint32) bool {
			return evalBinop(s, uint64(a), uint64(b)) == uint64(a)+uint64(b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("block size %d: %v", bs, err)
		}
	}
}

func TestAdderCSelShorterCriticalPath(t *testing.T) {
	// Build both adders as standalone modules and compare their fresh
	// critical delays with the timing engine: the carry-select variant
	// must be strictly faster at 32 bits.
	build := func(sel bool) *netlist.Netlist {
		b := netlist.NewBuilder("adder")
		c := NewC(b)
		clk := b.Clock("clk")
		a := c.RegisterBus(b.InputBus("a", 32), clk, 0)
		bb := c.RegisterBus(b.InputBus("b", 32), clk, 0)
		var sum Bus
		if sel {
			sum, _ = c.AdderCSel(a, bb, c.Zero(), 8)
		} else {
			sum, _ = c.Adder(a, bb, c.Zero())
		}
		q := c.RegisterBus(sum, clk, 0)
		b.OutputBus("s", q)
		return b.MustBuild()
	}
	ripple := build(false)
	csel := build(true)
	// Longest combinational level count is a proxy for delay here (the
	// sta package depends on synth, so the full STA comparison lives in
	// the sta tests).
	depth := func(nl *netlist.Netlist) int {
		level := make(map[int]int)
		worst := 0
		for _, cid := range nl.Topo() {
			c := nl.Cells[cid]
			l := 0
			for _, in := range c.In {
				if d := nl.Driver(in); d != netlist.NoCell && !nl.Cells[d].Kind.IsSequential() {
					if level[int(d)]+1 > l {
						l = level[int(d)] + 1
					}
				}
			}
			level[int(cid)] = l
			if l > worst {
				worst = l
			}
		}
		return worst
	}
	dr, dc := depth(ripple), depth(csel)
	t.Logf("logic depth: ripple %d, carry-select %d; cells: %d vs %d",
		dr, dc, len(ripple.Cells), len(csel.Cells))
	if dc >= dr {
		t.Errorf("carry-select depth %d not shorter than ripple %d", dc, dr)
	}
	if len(csel.Cells) <= len(ripple.Cells) {
		t.Errorf("carry-select should trade area for speed")
	}
}
