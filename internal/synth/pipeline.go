package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Pipeline is a parametric pipelined-core generator in the CV32E40P
// style: per-lane instruction registers, a private register file with
// one-hot read selectors, an operand-forwarding network off the in-flight
// stage registers, and a chain of execute stages (carry-select adder,
// subtractor, logic unit, shifter behind a one-hot result selector), all
// clocked from a buffered clock tree. It exists so tests and benches can
// synthesize realistic sequential designs of 10^4 to 10^6 cells on
// demand instead of grading everything on the two toy datapaths.
//
// The instruction encoding is structural, not architectural: op selects
// the execute result, rd/rs1/rs2 address the register file, and every
// lane mixes the shared instruction word with its lane index so lanes
// are distinct cell populations with distinct signal probabilities.
type Pipeline struct {
	// Stages is the number of pipeline stages (>= 2): one decode stage
	// plus Stages-1 execute stages.
	Stages int
	// Width is the datapath width in bits (>= 2).
	Width int
	// Lanes is the number of parallel execution lanes (>= 1); the main
	// size lever, since each lane carries its own register file, decode
	// and execute datapath.
	Lanes int
	// Regs is the number of architectural registers per lane. 0 means 8.
	Regs int
}

const pipelineOpBits = 4

func (p Pipeline) withDefaults() Pipeline {
	if p.Stages < 2 {
		p.Stages = 2
	}
	if p.Width < 2 {
		p.Width = 2
	}
	if p.Lanes < 1 {
		p.Lanes = 1
	}
	if p.Regs < 2 {
		p.Regs = 8
	}
	return p
}

func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Build synthesizes the core. The module has ports clk, instr (shared
// instruction word), din (data injected into every register file) and
// dout (a per-lane XOR fold of the final stage results).
func (p Pipeline) Build() *netlist.Netlist {
	p = p.withDefaults()
	rbits := log2ceil(p.Regs)
	instrW := pipelineOpBits + 3*rbits

	b := netlist.NewBuilder(fmt.Sprintf("pipeline_s%d_w%d_l%d", p.Stages, p.Width, p.Lanes))
	est := p.estimateCells()
	b.Reserve(est, 3*est)
	c := NewC(b)

	clk := b.Clock("clk")
	instr := b.InputBus("instr", instrW)
	din := b.InputBus("din", p.Width)

	// Clock distribution: enough leaves for one per stage register bank,
	// with a short local buffer chain under each, like a placed tree.
	depth := log2ceil(p.Stages + 1)
	if depth < 2 {
		depth = 2
	}
	tree := c.BuildClockTree(clk, depth, WithLeafChain(1))
	leaf := func(stage int) netlist.NetID {
		return tree.Leaves[stage%len(tree.Leaves)]
	}

	dout := make(Bus, p.Width)
	for i := range dout {
		dout[i] = c.Zero()
	}
	for lane := 0; lane < p.Lanes; lane++ {
		result := p.buildLane(c, lane, instr, din, leaf)
		dout = c.XorBus(dout, result)
	}
	b.OutputBus("dout", dout)
	return b.MustBuild()
}

// buildLane constructs one lane and returns its final-stage result bus.
func (p Pipeline) buildLane(c *C, lane int, instr, din Bus, leaf func(int) netlist.NetID) Bus {
	b := c.B
	rbits := log2ceil(p.Regs)

	// IF/ID: register the shared instruction word, mixed per lane
	// (rotate by lane, invert alternating bits by lane parity) so each
	// lane's decode sees a distinct signal population.
	mixed := make(Bus, len(instr))
	for i := range instr {
		n := instr[(i+lane)%len(instr)]
		if lane%2 == 1 && i%2 == 0 {
			n = c.Not(n)
		}
		mixed[i] = n
	}
	iid := c.RegisterBus(mixed, leaf(0), uint64(lane))

	op := iid[0:pipelineOpBits]
	rd := iid[pipelineOpBits : pipelineOpBits+rbits]
	rs1 := iid[pipelineOpBits+rbits : pipelineOpBits+2*rbits]
	rs2 := iid[pipelineOpBits+2*rbits : pipelineOpBits+3*rbits]
	opHot := c.Decoder(op[:2]) // 4 execute ops
	wen := op[2]               // writeback enable

	// Register file: p.Regs registers with a mux write port. The D nets
	// are pre-allocated so the writeback network (built after the
	// execute stages) can drive them through explicit write-port
	// buffers.
	regs := make([]Bus, p.Regs)
	wbIn := make([]Bus, p.Regs)
	for r := range regs {
		wbIn[r] = b.NewBus(p.Width)
		regs[r] = c.RegisterBus(wbIn[r], leaf(0), uint64(lane+r))
	}

	// Decode-stage reads: one-hot selectors over the register file.
	rs1Hot := c.Decoder(rs1)
	rs2Hot := c.Decoder(rs2)
	a := c.Select1H(rs1Hot[:p.Regs], regs)
	bOp := c.Select1H(rs2Hot[:p.Regs], regs)
	// Mix the external data port into operand b so primary inputs reach
	// the datapath (keeps SP workload-dependent all the way through).
	bOp = c.XorBus(bOp, din)

	// Execute stages with operand forwarding: each stage's in-flight
	// destination register is compared against this instruction's rs1,
	// and on a match the in-flight partial result is muxed in front of
	// the register-file read (classic EX->ID bypass, one mux per stage).
	v := a
	bPipe := bOp
	rdPipe := rd
	hotPipe := opHot
	for s := 1; s < p.Stages; s++ {
		fwd := c.EqualBus(rdPipe, rs1)
		v = c.MuxBus(fwd, v, bPipe)

		sum, _ := c.AdderCSel(v, bPipe, c.Zero(), 4)
		diff, _ := c.Sub(v, bPipe)
		var logic Bus
		if s%2 == 0 {
			logic = c.AndBus(c.XorBus(v, bPipe), c.NotBus(bPipe))
		} else {
			logic = c.OrBus(c.XorBus(v, bPipe), c.AndBus(v, bPipe))
		}
		sh := c.ZeroExtend(rdPipe, log2ceil(p.Width))
		shift := c.ShiftLeft(v, sh)
		res := c.Select1H(hotPipe, []Bus{sum, diff, logic, shift})

		lf := leaf(s)
		v = c.RegisterBus(res, lf, 0)
		bPipe = c.RegisterBus(bPipe, lf, 0)
		rdPipe = c.RegisterBus(rdPipe, lf, 0)
		hotPipe = c.RegisterBus(hotPipe, lf, 0)
	}

	// Writeback: decode the final-stage rd into a write-enable one-hot
	// and drive every register's pre-allocated D net through an explicit
	// write-port buffer (hold value unless selected).
	wenPipe := wen
	for s := 1; s < p.Stages; s++ {
		wenPipe = b.AddDFF(wenPipe, leaf(s), false)
	}
	wrHot := c.Decoder(rdPipe)
	for r := 0; r < p.Regs; r++ {
		sel := c.And(wrHot[r], wenPipe)
		d := c.MuxBus(sel, regs[r], v)
		for i := range d {
			b.AddRaw(cell.BUF, fmt.Sprintf("WB$l%d_r%d_%d", lane, r, i),
				Bus{d[i]}, netlist.NoNet, wbIn[r][i], false)
		}
	}
	return v
}

// estimateCells is a rough sizing model used only to pre-reserve builder
// capacity; Build is correct regardless of its accuracy.
func (p Pipeline) estimateCells() int {
	perStage := 14 * p.Width
	perLane := p.Regs*(3*p.Width+2) + (p.Stages-1)*perStage + 6*p.Width
	return p.Lanes*perLane + 64
}

// PipelineForCells returns pipeline parameters sized so Build produces
// approximately n cells (n is clamped below by the smallest one-lane
// core). The lane is the linear size lever: two probe builds measure the
// fixed and per-lane cell costs exactly, then lanes are solved for.
func PipelineForCells(n int) Pipeline {
	base := Pipeline{Stages: 5, Width: 32, Lanes: 1, Regs: 8}
	c1 := len(base.Build().Cells)
	two := base
	two.Lanes = 2
	c2 := len(two.Build().Cells)
	perLane := c2 - c1
	fixed := c1 - perLane
	lanes := (n - fixed + perLane/2) / perLane
	if lanes < 1 {
		lanes = 1
	}
	base.Lanes = lanes
	return base
}
