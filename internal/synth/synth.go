// Package synth is the structural synthesis library: it lowers word-level
// datapath descriptions into netlists of standard cells. It plays the role
// of the paper's Genus/Design Compiler synthesis step — the downstream
// phases (SP simulation, aging-aware STA, failure-model instrumentation,
// BMC) all consume its gate-level output.
//
// The entry point is C, a combinator context over a netlist.Builder. Bit
// operations perform light constant folding (against nets created by
// Zero/One/Const only) so that datapaths instantiated with constant
// control inputs stay small, mirroring what logic optimization does in a
// real synthesis flow.
package synth

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// Bus re-exports the netlist bus type for callers' convenience.
type Bus = netlist.Bus

// C is a synthesis context. All combinators append cells to the wrapped
// builder and return the new output nets.
type C struct {
	B *netlist.Builder

	zero, one netlist.NetID
	consts    map[netlist.NetID]bool // nets with a known constant value
}

// NewC wraps a builder in a synthesis context.
func NewC(b *netlist.Builder) *C {
	return &C{B: b, zero: netlist.NoNet, one: netlist.NoNet, consts: make(map[netlist.NetID]bool)}
}

// Zero returns the shared constant-0 net, creating the TIE0 cell on first
// use.
func (c *C) Zero() netlist.NetID {
	if c.zero == netlist.NoNet {
		c.zero = c.B.Add(cell.TIE0)
		c.consts[c.zero] = false
	}
	return c.zero
}

// One returns the shared constant-1 net.
func (c *C) One() netlist.NetID {
	if c.one == netlist.NoNet {
		c.one = c.B.Add(cell.TIE1)
		c.consts[c.one] = true
	}
	return c.one
}

// constOf reports whether n is a known constant and its value.
func (c *C) constOf(n netlist.NetID) (bool, bool) {
	v, ok := c.consts[n]
	return v, ok
}

// Const returns a width-bit bus holding value (LSB first).
func (c *C) Const(width int, value uint64) Bus {
	b := make(Bus, width)
	for i := range b {
		if value>>uint(i)&1 == 1 {
			b[i] = c.One()
		} else {
			b[i] = c.Zero()
		}
	}
	return b
}

// Not returns !a.
func (c *C) Not(a netlist.NetID) netlist.NetID {
	if v, ok := c.constOf(a); ok {
		if v {
			return c.Zero()
		}
		return c.One()
	}
	return c.B.Add(cell.INV, a)
}

// And returns a & b.
func (c *C) And(a, b netlist.NetID) netlist.NetID {
	if v, ok := c.constOf(a); ok {
		if !v {
			return c.Zero()
		}
		return b
	}
	if v, ok := c.constOf(b); ok {
		if !v {
			return c.Zero()
		}
		return a
	}
	if a == b {
		return a
	}
	return c.B.Add(cell.AND2, a, b)
}

// Or returns a | b.
func (c *C) Or(a, b netlist.NetID) netlist.NetID {
	if v, ok := c.constOf(a); ok {
		if v {
			return c.One()
		}
		return b
	}
	if v, ok := c.constOf(b); ok {
		if v {
			return c.One()
		}
		return a
	}
	if a == b {
		return a
	}
	return c.B.Add(cell.OR2, a, b)
}

// Xor returns a ^ b.
func (c *C) Xor(a, b netlist.NetID) netlist.NetID {
	if v, ok := c.constOf(a); ok {
		if v {
			return c.Not(b)
		}
		return b
	}
	if v, ok := c.constOf(b); ok {
		if v {
			return c.Not(a)
		}
		return a
	}
	if a == b {
		return c.Zero()
	}
	return c.B.Add(cell.XOR2, a, b)
}

// Nand returns !(a & b).
func (c *C) Nand(a, b netlist.NetID) netlist.NetID {
	if _, ok := c.constOf(a); ok {
		return c.Not(c.And(a, b))
	}
	if _, ok := c.constOf(b); ok {
		return c.Not(c.And(a, b))
	}
	return c.B.Add(cell.NAND2, a, b)
}

// Nor returns !(a | b).
func (c *C) Nor(a, b netlist.NetID) netlist.NetID {
	if _, ok := c.constOf(a); ok {
		return c.Not(c.Or(a, b))
	}
	if _, ok := c.constOf(b); ok {
		return c.Not(c.Or(a, b))
	}
	return c.B.Add(cell.NOR2, a, b)
}

// Xnor returns !(a ^ b).
func (c *C) Xnor(a, b netlist.NetID) netlist.NetID {
	if _, ok := c.constOf(a); ok {
		return c.Not(c.Xor(a, b))
	}
	if _, ok := c.constOf(b); ok {
		return c.Not(c.Xor(a, b))
	}
	if a == b {
		return c.One()
	}
	return c.B.Add(cell.XNOR2, a, b)
}

// Mux returns s ? b : a.
func (c *C) Mux(s, a, b netlist.NetID) netlist.NetID {
	if v, ok := c.constOf(s); ok {
		if v {
			return b
		}
		return a
	}
	if a == b {
		return a
	}
	va, oka := c.constOf(a)
	vb, okb := c.constOf(b)
	switch {
	case oka && okb:
		// a and b differ (a==b handled above): s?1:0 = s, s?0:1 = !s.
		if vb && !va {
			return s
		}
		return c.Not(s)
	case oka && !va: // s ? b : 0
		return c.And(s, b)
	case oka && va: // s ? b : 1  =  !s | b
		return c.Or(c.Not(s), b)
	case okb && !vb: // s ? 0 : a  =  !s & a
		return c.And(c.Not(s), a)
	case okb && vb: // s ? 1 : a  =  s | a
		return c.Or(s, a)
	}
	return c.B.Add(cell.MUX2, a, b, s)
}

// --- Bus (word-level) combinators ---

// NotBus inverts every bit.
func (c *C) NotBus(a Bus) Bus { return c.mapBus(a, c.Not) }

func (c *C) mapBus(a Bus, f func(netlist.NetID) netlist.NetID) Bus {
	out := make(Bus, len(a))
	for i, n := range a {
		out[i] = f(n)
	}
	return out
}

// AndBus computes the bitwise AND of equal-width buses.
func (c *C) AndBus(a, b Bus) Bus { return c.zipBus(a, b, c.And) }

// OrBus computes the bitwise OR.
func (c *C) OrBus(a, b Bus) Bus { return c.zipBus(a, b, c.Or) }

// XorBus computes the bitwise XOR.
func (c *C) XorBus(a, b Bus) Bus { return c.zipBus(a, b, c.Xor) }

func (c *C) zipBus(a, b Bus, f func(x, y netlist.NetID) netlist.NetID) Bus {
	if len(a) != len(b) {
		panic("synth: bus width mismatch")
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = f(a[i], b[i])
	}
	return out
}

// MuxBus returns s ? b : a elementwise.
func (c *C) MuxBus(s netlist.NetID, a, b Bus) Bus {
	if len(a) != len(b) {
		panic("synth: bus width mismatch")
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.Mux(s, a[i], b[i])
	}
	return out
}

// OrReduce ORs all bits together with a balanced tree.
func (c *C) OrReduce(a Bus) netlist.NetID { return c.reduce(a, c.Or, false) }

// AndReduce ANDs all bits together.
func (c *C) AndReduce(a Bus) netlist.NetID { return c.reduce(a, c.And, true) }

// XorReduce XORs all bits together (parity).
func (c *C) XorReduce(a Bus) netlist.NetID { return c.reduce(a, c.Xor, false) }

func (c *C) reduce(a Bus, f func(x, y netlist.NetID) netlist.NetID, empty bool) netlist.NetID {
	if len(a) == 0 {
		if empty {
			return c.One()
		}
		return c.Zero()
	}
	for len(a) > 1 {
		next := make(Bus, 0, (len(a)+1)/2)
		for i := 0; i+1 < len(a); i += 2 {
			next = append(next, f(a[i], a[i+1]))
		}
		if len(a)%2 == 1 {
			next = append(next, a[len(a)-1])
		}
		a = next
	}
	return a[0]
}

// IsZero returns 1 iff the bus is all zeros.
func (c *C) IsZero(a Bus) netlist.NetID { return c.Not(c.OrReduce(a)) }

// EqualBus returns 1 iff a == b.
func (c *C) EqualBus(a, b Bus) netlist.NetID {
	return c.IsZero(c.XorBus(a, b))
}

// Repeat returns a bus of width copies of bit n.
func (c *C) Repeat(n netlist.NetID, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = n
	}
	return out
}

// ZeroExtend widens a to width bits with zeros (or truncates).
func (c *C) ZeroExtend(a Bus, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		if i < len(a) {
			out[i] = a[i]
		} else {
			out[i] = c.Zero()
		}
	}
	return out
}

// SignExtend widens a to width bits replicating the top bit.
func (c *C) SignExtend(a Bus, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		if i < len(a) {
			out[i] = a[i]
		} else {
			out[i] = a[len(a)-1]
		}
	}
	return out
}

// Decoder returns the 2^len(sel)-bit one-hot decode of sel.
func (c *C) Decoder(sel Bus) Bus {
	out := Bus{c.One()}
	for _, s := range sel {
		ns := c.Not(s)
		next := make(Bus, 0, len(out)*2)
		for _, o := range out {
			next = append(next, c.And(o, ns))
		}
		for _, o := range out {
			next = append(next, c.And(o, s))
		}
		out = next
	}
	return out
}

// Select1H builds an AND-OR selector: out = OR_i (onehot[i] ? options[i]).
// All options must share a width. Exactly one select line is expected to
// be high; if none is, the output is zero.
func (c *C) Select1H(onehot Bus, options []Bus) Bus {
	if len(onehot) != len(options) {
		panic("synth: one-hot width mismatch")
	}
	if len(options) == 0 {
		panic("synth: empty selector")
	}
	width := len(options[0])
	acc := make(Bus, width)
	for i := range acc {
		acc[i] = c.Zero()
	}
	for i, opt := range options {
		if len(opt) != width {
			panic("synth: option width mismatch")
		}
		masked := c.AndBus(opt, c.Repeat(onehot[i], width))
		acc = c.OrBus(acc, masked)
	}
	return acc
}

// RegisterBus instantiates one DFF per bit, clocked by clk.
func (c *C) RegisterBus(d Bus, clk netlist.NetID, init uint64) Bus {
	out := make(Bus, len(d))
	for i, n := range d {
		out[i] = c.B.AddDFF(n, clk, init>>uint(i)&1 == 1)
	}
	return out
}

// StickyAlarm instantiates a set-dominant alarm register: a DFF whose D
// input is (Q | fire), so a single asserted cycle of fire latches the
// alarm until reset. The runtime-guard checkers (alu.BuildGuarded,
// fpu.BuildGuarded) use it to make one-cycle invariant violations
// observable at module outputs.
func (c *C) StickyAlarm(name string, fire, clk netlist.NetID) netlist.NetID {
	q := c.B.Net()
	d := c.Or(q, fire)
	c.B.AddRaw(cell.DFF, name, []netlist.NetID{d}, clk, q, false)
	return q
}
