package synth

import (
	"testing"

	"repro/internal/netlist"
)

func TestPipelineBuilds(t *testing.T) {
	nl := Pipeline{Stages: 3, Width: 8, Lanes: 2, Regs: 4}.Build()
	st := nl.Stats()
	if st.DFFs == 0 || st.Comb == 0 || st.ClockCells == 0 {
		t.Fatalf("degenerate pipeline: %+v", st)
	}
	if nl.ClockRoot == netlist.NoNet {
		t.Error("pipeline has no clock root")
	}
	if _, ok := nl.FindInput("instr"); !ok {
		t.Error("missing instr port")
	}
	if _, ok := nl.FindOutput("dout"); !ok {
		t.Error("missing dout port")
	}
}

func TestPipelineScalesWithParams(t *testing.T) {
	base := Pipeline{Stages: 3, Width: 8, Lanes: 1, Regs: 4}
	n1 := len(base.Build().Cells)
	twoLanes := base
	twoLanes.Lanes = 2
	n2 := len(twoLanes.Build().Cells)
	if n2 <= n1 {
		t.Errorf("lanes=2 (%d cells) not larger than lanes=1 (%d cells)", n2, n1)
	}
	deeper := base
	deeper.Stages = 6
	n3 := len(deeper.Build().Cells)
	if n3 <= n1 {
		t.Errorf("stages=6 (%d cells) not larger than stages=3 (%d cells)", n3, n1)
	}
	// Lane scaling is roughly linear: the second lane's marginal cost
	// should repeat for the third.
	threeLanes := base
	threeLanes.Lanes = 3
	n4 := len(threeLanes.Build().Cells)
	marginal2 := n2 - n1
	marginal3 := n4 - n2
	if marginal3 < marginal2*9/10 || marginal3 > marginal2*11/10 {
		t.Errorf("lane cost not linear: +%d then +%d cells", marginal2, marginal3)
	}
}

func TestPipelineRoundTripsThroughVerilog(t *testing.T) {
	nl := Pipeline{Stages: 4, Width: 8, Lanes: 2, Regs: 4}.Build()
	back, err := netlist.ParseVerilog(nl.Verilog())
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	a, b := nl.Stats(), back.Stats()
	if a != b {
		t.Errorf("stats changed across round trip: %+v vs %+v", a, b)
	}
	if (nl.ClockRoot == netlist.NoNet) != (back.ClockRoot == netlist.NoNet) {
		t.Error("clock root lost in round trip")
	}
}

func TestPipelineForCells(t *testing.T) {
	for _, target := range []int{20_000, 100_000} {
		p := PipelineForCells(target)
		got := len(p.Build().Cells)
		if got < target*8/10 || got > target*12/10 {
			t.Errorf("PipelineForCells(%d) built %d cells (params %+v)", target, got, p)
		}
	}
}

func TestPipelineDeterministic(t *testing.T) {
	p := Pipeline{Stages: 3, Width: 8, Lanes: 2, Regs: 4}
	a := p.Build().Verilog()
	b := p.Build().Verilog()
	if a != b {
		t.Error("pipeline generation is not deterministic")
	}
}
