package integrate

import (
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/cpu"
	"repro/internal/embench"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/profile"
)

const memSize = 1 << 20

func mustBuild(t testing.TB, b embench.Benchmark) *isa.Image {
	t.Helper()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func mustInsts(t testing.TB, s *lift.Suite) int {
	t.Helper()
	n, err := s.InstCount()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// smallSuite builds a deterministic random suite (behavioural-golden,
// so it passes on a healthy CPU) for integration tests.
func smallSuite(n int) *lift.Suite {
	return lift.RandomSuite(alu.Build(), n, 7)
}

func fpuSuite(n int) *lift.Suite {
	return lift.RandomSuite(fpu.Build(), n, 8)
}

func TestProfileCollect(t *testing.T) {
	b, _ := embench.ByName("crc32")
	img := mustBuild(t, b)
	p := profile.Collect(img, memSize, 100_000_000)
	if p == nil {
		t.Fatal("profiling run failed")
	}
	if p.TotalInsts == 0 || len(p.Blocks) < 4 {
		t.Fatalf("profile too small: %d insts, %d blocks", p.TotalInsts, len(p.Blocks))
	}
	// Counts must sum plausibly: dynamic insts >= sum over blocks of
	// count (each block has >= 1 instruction).
	var sum uint64
	hot := uint64(0)
	for _, blk := range p.Blocks {
		sum += blk.Count * uint64(blk.Insts)
		if blk.Count > hot {
			hot = blk.Count
		}
	}
	if sum != p.TotalInsts {
		t.Errorf("block-weighted count %d != dynamic insts %d", sum, p.TotalInsts)
	}
	if hot < 100 {
		t.Errorf("no hot block found (max count %d)", hot)
	}
}

func TestChooseSiteWithinBudget(t *testing.T) {
	b, _ := embench.ByName("crc32")
	img := mustBuild(t, b)
	p := profile.Collect(img, memSize, 100_000_000)
	suite := smallSuite(4)
	site, err := ChooseSite(p, mustInsts(t, suite), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if site.EffOverhead > 0.011 {
		t.Errorf("effective overhead %v exceeds budget", site.EffOverhead)
	}
	if site.Block.Count < minRoutineCount {
		t.Errorf("chosen block not routine: count %d", site.Block.Count)
	}
}

func TestChooseSiteThrottles(t *testing.T) {
	b, _ := embench.ByName("fir")
	img := mustBuild(t, b)
	p := profile.Collect(img, memSize, 100_000_000)
	// A huge suite forces throttling everywhere.
	suite := smallSuite(60)
	site, err := ChooseSite(p, mustInsts(t, suite), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if site.EffOverhead > 0.0012 {
		t.Errorf("throttled overhead %v exceeds budget", site.EffOverhead)
	}
	if site.EstOverhead > 0.001 && site.Period == 1 {
		t.Error("budget-exceeding site must be throttled")
	}
}

func TestEmbedPreservesBehaviour(t *testing.T) {
	suite := smallSuite(4)
	for _, b := range embench.All {
		img := mustBuild(t, b)
		p := profile.Collect(img, memSize, 200_000_000)
		if p == nil {
			t.Fatalf("%s profiling failed", b.Name)
		}
		site, err := ChooseSite(p, mustInsts(t, suite), 0.01)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		emb, err := Embed(img, suite, site)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		c := cpu.New(memSize)
		c.Load(emb.Image)
		if halt := c.Run(400_000_000); halt != cpu.HaltExit {
			t.Fatalf("%s instrumented: halt=%v (%s) pc=%#x", b.Name, halt, c.FaultMsg, c.PC)
		}
		if c.ExitCode != 0 {
			t.Fatalf("%s instrumented self-check failed (exit=%d)", b.Name, c.ExitCode)
		}
	}
}

func TestEmbedFPUSuitePreservesFPState(t *testing.T) {
	suite := fpuSuite(4)
	for _, name := range []string{"minver", "st", "nbody"} {
		b, _ := embench.ByName(name)
		img := mustBuild(t, b)
		p := profile.Collect(img, memSize, 200_000_000)
		site, err := ChooseSite(p, mustInsts(t, suite), 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		emb, err := Embed(img, suite, site)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := cpu.New(memSize)
		c.Load(emb.Image)
		if halt := c.Run(400_000_000); halt != cpu.HaltExit || c.ExitCode != 0 {
			t.Fatalf("%s with FPU tests: halt=%v exit=%d (FP state not preserved?)",
				name, halt, c.ExitCode)
		}
	}
}

func TestMeasureOverheadWithinBudget(t *testing.T) {
	suite := smallSuite(4)
	for _, name := range []string{"crc32", "primecount", "statemate"} {
		b, _ := embench.ByName(name)
		o, err := MeasureOverhead(name, mustBuild(t, b), suite, 0.01, memSize, 400_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: est %.4f (period %d), measured %.4f",
			name, o.Site.EstOverhead, o.Site.Period, o.Fraction)
		if o.Fraction > 0.05 {
			t.Errorf("%s: measured overhead %.4f way above budget", name, o.Fraction)
		}
		if o.TestedCycles <= o.BaselineCycles {
			t.Errorf("%s: instrumented run not slower at all?", name)
		}
	}
}

func TestEmbeddedSuiteActuallyRuns(t *testing.T) {
	// Replace the suite's expectation with a deliberately wrong value:
	// the instrumented app must trap (proving the tests execute).
	suite := smallSuite(2)
	suite.Cases[0].Expected[0].Result ^= 1
	b, _ := embench.ByName("crc32")
	img := mustBuild(t, b)
	p := profile.Collect(img, memSize, 100_000_000)
	site, err := ChooseSite(p, mustInsts(t, suite), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := Embed(img, suite, site)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(memSize)
	c.Load(emb.Image)
	if halt := c.Run(400_000_000); halt != cpu.HaltBreak {
		t.Fatalf("corrupted expectation not detected: halt=%v", halt)
	}
}

func TestGenerateC(t *testing.T) {
	src := GenerateC([]*lift.Suite{smallSuite(3), fpuSuite(2)})
	for _, want := range []string{
		"vega_run_all", "vega_run_random", "vega_set_handler",
		"__asm__ volatile", "vega_test_000", "vega_num_tests",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	if strings.Count(src, "int vega_test_") != 5 {
		t.Errorf("want 5 test functions, got %d", strings.Count(src, "int vega_test_"))
	}
}

func TestGenerateGoWrapper(t *testing.T) {
	src := GenerateGoWrapper()
	for _, want := range []string{"package vegaaging", "ErrSDC", "RunAll", "RunRandom"} {
		if !strings.Contains(src, want) {
			t.Errorf("wrapper missing %q", want)
		}
	}
}
