// Package integrate implements the paper's Test Integration phase
// (§3.4): profile-guided embedding of a generated test suite into an
// application at a routinely-but-not-hotly executed basic block, with an
// instruction-count overhead estimate and a probability throttle that
// keeps the expected overhead under a user budget; plus the generation
// of a standalone software aging library (C source with inline assembly
// and language wrappers).
package integrate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/profile"
)

// Site is a chosen integration point.
type Site struct {
	Block profile.Block
	// EstOverhead is the estimated instruction-count overhead fraction
	// before throttling: blockCount × suiteInsts / totalInsts.
	EstOverhead float64
	// Period is the invocation throttle: the tests run on every
	// Period-th visit of the block (1 = every visit).
	Period int
	// EffOverhead is the estimated overhead after throttling.
	EffOverhead float64
}

// minRoutineCount is the minimum dynamic execution count for a block to
// count as "routinely accessed".
const minRoutineCount = 4

// fixedBlobCycles estimates the per-visit fixed cost of the embedded
// blob (trampoline jumps, scratch saves, counter update, throttle check)
// in cycles. The full register/fflags save runs only on the visits that
// execute the tests.
const fixedBlobCycles = 34

// suiteCyclesPerInst converts the suite's instruction count into a cycle
// estimate for site selection (loads and taken branches dominate).
const suiteCyclesPerInst = 1.4

// ChooseSite picks the integration point per §3.4.2: among routinely
// executed blocks, the most frequent one whose estimated overhead still
// fits the budget; if even the least frequent routine block exceeds the
// budget, that block is chosen with an invocation-probability throttle
// on the test burst.
func ChooseSite(p *profile.Profile, suiteInsts int, budget float64) (Site, error) {
	if p.TotalInsts == 0 {
		return Site{}, fmt.Errorf("integrate: empty profile")
	}
	var candidates []profile.Block
	for _, b := range p.Blocks {
		if b.Count >= minRoutineCount {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return Site{}, fmt.Errorf("integrate: no routinely executed block")
	}
	// eff estimates the cycle-overhead fraction of placing the blob at b
	// with the given throttle period.
	suiteCycles := float64(suiteInsts) * suiteCyclesPerInst
	eff := func(b profile.Block, period int) float64 {
		perVisit := fixedBlobCycles + suiteCycles/float64(period)
		return float64(b.Count) * perVisit / float64(p.TotalCycles)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Count != candidates[j].Count {
			return candidates[i].Count < candidates[j].Count
		}
		return candidates[i].Start < candidates[j].Start
	})
	// Most frequent candidate that fits the budget unthrottled.
	best := -1
	for i, b := range candidates {
		if eff(b, 1) <= budget {
			best = i
		}
	}
	if best >= 0 {
		b := candidates[best]
		return Site{Block: b, EstOverhead: eff(b, 1), Period: 1, EffOverhead: eff(b, 1)}, nil
	}
	// Throttle the least frequent routine block: solve for the period
	// that brings the suite portion within the remaining budget, rounded
	// up to a power of two so the runtime check is a single AND.
	b := candidates[0]
	est := eff(b, 1)
	fixed := float64(b.Count) * fixedBlobCycles / float64(p.TotalCycles)
	suitePart := float64(b.Count) * suiteCycles / float64(p.TotalCycles)
	remaining := budget - fixed
	// maxPeriod keeps the throttle mask within an ANDI immediate.
	const maxPeriod = 2048
	period := maxPeriod // fixed cost alone busts the budget: minimize tests
	if remaining > 0 {
		period = nextPow2(int(math.Ceil(suitePart / remaining)))
		if period > maxPeriod {
			period = maxPeriod
		}
	}
	return Site{Block: b, EstOverhead: est, Period: period, EffOverhead: eff(b, period)}, nil
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// savedIntRegs is the integer register set the embedded blob preserves.
func savedIntRegs() []isa.Reg { return lift.ClobberedIntRegs() }

// fpSaveCount is how many FP registers the blob preserves when the suite
// contains FPU cases (the emission templates use f1..f15).
const fpSaveCount = 15

// Embedded is an instrumented application image.
type Embedded struct {
	Image     *isa.Image
	Site      Site
	BlobInsts int
	// CounterAddr is the throttle counter's memory location.
	CounterAddr uint32
}

// Embed splices the suite into the application at the chosen site,
// preserving every register (and fflags) the tests touch, bumping a
// visit counter, and honoring the throttle period. All branch and jump
// offsets crossing the insertion point are fixed up — the assembly-level
// equivalent of the paper's LLVM instrumentation pass.
func Embed(app *isa.Image, suite *lift.Suite, site Site) (*Embedded, error) {
	// The throttle counter lives right after the app's data segment.
	counterAddr := app.DataBase + uint32((len(app.Data)+7) & ^7)

	usesFPU := false
	for _, tc := range suite.Cases {
		if tc.Unit == "FPU" {
			usesFPU = true
		}
	}
	// The blob's constant pool lives right after the counter word.
	blobDataBase := counterAddr + 8
	blob, blobData, err := buildBlob(suite, site.Period, counterAddr, blobDataBase, usesFPU)
	if err != nil {
		return nil, err
	}
	img, err := splice(app, blob, site.Block.StartI)
	if err != nil {
		return nil, err
	}
	// Extend the data segment to cover the counter word and append the
	// blob's constant pool.
	for uint32(len(img.Data)) < blobDataBase-img.DataBase {
		img.Data = append(img.Data, 0)
	}
	img.Data = append(img.Data, blobData...)
	return &Embedded{Image: img, Site: site, BlobInsts: len(blob), CounterAddr: counterAddr}, nil
}

// buildBlob assembles the self-contained test blob. The cheap throttle
// path (scratch saves + counter) runs on every visit; the full register
// save and the test burst run only on the selected visits.
func buildBlob(suite *lift.Suite, period int, counterAddr, dataBase uint32, fp bool) ([]isa.Inst, []byte, error) {
	a := isa.NewAsm()
	a.SetDataBase(dataBase)
	regs := savedIntRegs()
	scratch := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3}
	frame := int32((len(regs)+len(scratch)+1)*4 + fpSaveCount*4)
	frame = (frame + 15) &^ 15
	scratchOff := func(i int) int32 { return int32(4 * i) }
	regOff := func(i int) int32 { return int32(4 * (len(scratch) + i)) }
	fflagsSlot := int32(4 * (len(scratch) + len(regs)))
	fpOff := func(i int) int32 { return fflagsSlot + 4 + int32(4*i) }

	a.Addi(isa.SP, isa.SP, -frame)
	for i, r := range scratch {
		a.Sw(r, scratchOff(i), isa.SP)
	}
	// Visit counter + throttle.
	a.Li(isa.T0, counterAddr)
	a.Lw(isa.T1, 0, isa.T0)
	a.Addi(isa.T1, isa.T1, 1)
	a.Sw(isa.T1, 0, isa.T0)
	if period > 1 {
		// Period is a power of two, so the throttle check is a single
		// AND. Conditional branches reach only ±4KiB; large suites need
		// the inverted-branch + jump idiom to skip over the burst.
		a.Andi(isa.T3, isa.T1, int32(period-1))
		a.Beqz(isa.T3, "vega_run")
		a.J("vega_skip")
		a.Label("vega_run")
	}

	// Full state save for the test burst.
	for i, r := range regs {
		a.Sw(r, regOff(i), isa.SP)
	}
	if fp {
		for i := 0; i < fpSaveCount; i++ {
			a.Fsw(isa.Reg(1+i), fpOff(i), isa.SP)
		}
	}
	a.Csrrs(isa.T4, isa.CSRFflags, isa.Zero)
	a.Sw(isa.T4, fflagsSlot, isa.SP)

	suite.EmitInto(a, "vega_fail")
	a.J("vega_detected_end")
	a.Label("vega_fail")
	a.Ebreak()
	a.Label("vega_detected_end")

	a.Lw(isa.T4, fflagsSlot, isa.SP)
	a.Csrrw(isa.Zero, isa.CSRFflags, isa.T4)
	if fp {
		for i := 0; i < fpSaveCount; i++ {
			a.Flw(isa.Reg(1+i), fpOff(i), isa.SP)
		}
	}
	for i, r := range regs {
		a.Lw(r, regOff(i), isa.SP)
	}

	a.Label("vega_skip")
	for i, r := range scratch {
		a.Lw(r, scratchOff(i), isa.SP)
	}
	a.Addi(isa.SP, isa.SP, frame)

	img, err := a.Assemble()
	if err != nil {
		return nil, nil, fmt.Errorf("integrate: blob assembly: %w", err)
	}
	return img.Insts, img.Data, nil
}

// splice wires the blob in front of instruction index `at` using a
// trampoline: a single unconditional jump is inserted at the site (so
// every arrival — branch or fallthrough — runs the tests first) and the
// blob itself is appended past the end of the program, ending with a
// jump back to the displaced instruction. Only the one-instruction shift
// crosses existing branches, so conditional-branch ranges survive even
// for large suites; the long hops use jal's ±1MiB reach.
func splice(app *isa.Image, blob []isa.Inst, at int) (*isa.Image, error) {
	const k = 1 // the trampoline
	posIdx := func(i int) int {
		if i < at {
			return i
		}
		return i + k
	}
	targetIdx := func(t int) int {
		if t <= at {
			return t
		}
		return t + k
	}
	blobStart := len(app.Insts) + k
	out := make([]isa.Inst, 0, blobStart+len(blob)+1)
	out = append(out, app.Insts[:at]...)
	out = append(out, isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: int32(4 * (blobStart - at))})
	out = append(out, app.Insts[at:]...)
	out = append(out, blob...)
	// Return to the displaced leader (now at index at+1).
	back := at + 1 - (blobStart + len(blob))
	out = append(out, isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: int32(4 * back)})

	for i, inst := range app.Insts {
		switch inst.Op {
		case isa.JAL, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
			t := i + int(inst.Imm)/4
			newOff := int32(4 * (targetIdx(t) - posIdx(i)))
			out[posIdx(i)].Imm = newOff
		}
	}

	img := &isa.Image{
		Base:     app.Base,
		Insts:    out,
		Labels:   make(map[string]uint32, len(app.Labels)),
		DataBase: app.DataBase,
		Data:     append([]byte(nil), app.Data...),
	}
	insertAddr := app.Base + 4*uint32(at)
	for name, addr := range app.Labels {
		if addr >= insertAddr && addr < app.DataBase {
			addr += 4 * uint32(k)
		}
		img.Labels[name] = addr
	}
	img.Words = make([]uint32, len(out))
	for i, inst := range out {
		w, err := isa.Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("integrate: re-encode inst %d (%v): %w", i, inst, err)
		}
		img.Words[i] = w
	}
	return img, nil
}
