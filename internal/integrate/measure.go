package integrate

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/profile"
)

// Overhead is one application's integration measurement (a bar of the
// paper's Figure 9).
type Overhead struct {
	App            string
	Site           Site
	BaselineCycles uint64
	TestedCycles   uint64
	// Fraction is (tested-baseline)/baseline.
	Fraction float64
}

// MeasureOverhead profiles the application, chooses the integration
// site for the suite under the overhead budget, embeds the tests, and
// measures the actual cycle overhead of the instrumented binary against
// the baseline.
func MeasureOverhead(name string, app *isa.Image, suite *lift.Suite, budget float64, memSize int, maxCycles uint64) (*Overhead, error) {
	prof := profile.Collect(app, memSize, maxCycles)
	if prof == nil {
		return nil, fmt.Errorf("integrate: %s did not exit cleanly during profiling", name)
	}
	insts, err := suite.InstCount()
	if err != nil {
		return nil, fmt.Errorf("integrate: %s: %w", name, err)
	}
	site, err := ChooseSite(prof, insts, budget)
	if err != nil {
		return nil, fmt.Errorf("integrate: %s: %w", name, err)
	}
	emb, err := Embed(app, suite, site)
	if err != nil {
		return nil, err
	}

	base := cpu.New(memSize)
	base.Load(app)
	if base.Run(maxCycles) != cpu.HaltExit || base.ExitCode != 0 {
		return nil, fmt.Errorf("integrate: %s baseline failed", name)
	}
	tested := cpu.New(memSize)
	tested.Load(emb.Image)
	if halt := tested.Run(maxCycles); halt != cpu.HaltExit || tested.ExitCode != 0 {
		return nil, fmt.Errorf("integrate: %s instrumented run failed (halt=%v exit=%d)",
			name, halt, tested.ExitCode)
	}

	o := &Overhead{
		App:            name,
		Site:           site,
		BaselineCycles: base.Cycles,
		TestedCycles:   tested.Cycles,
	}
	o.Fraction = float64(tested.Cycles)/float64(base.Cycles) - 1
	return o, nil
}
