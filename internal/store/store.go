// Package store is the fleet daemon's shared content-addressed artifact
// cache. Where the per-process memoizers (engine.Cached, sta.CachedGraph)
// key compiled artifacts by netlist *pointer* — sound inside one process
// where a netlist is built once and shared — a screening service receives
// the same netlist over and over as bytes, and every submission parses to
// a fresh pointer. The store closes that gap: artifacts are keyed by the
// content hash of the submission, so N requests carrying the same netlist
// resolve to one canonical parsed instance, one compiled engine.Program,
// one sta.TimingGraph and one aging corner grid, however many connections
// they arrived on.
//
// Three properties the daemon needs, beyond a map:
//
//   - Singleflight: concurrent requests for a missing key coalesce onto
//     one build. A burst of identical submissions compiles the netlist
//     exactly once; the rest wait for the leader and share the result
//     (TestSingleflightBuildsOnce holds this under the race detector).
//   - Bounded memory: entries live in an internal/lru cache, so a stream
//     of one-shot cold submissions cycles through the cold end while the
//     fleet's hot netlists stay resident. Eviction costs a recompile,
//     never correctness.
//   - Accounting: hits, builds, coalesced waiters, evictions, in-flight
//     builds and residency are exported through Stats and surfaced on the
//     daemon's /metrics endpoint — the numbers that decide capacity.
//
// Values are stored as `any`: the store is one shared budget across
// artifact kinds (a program and a timing graph compete for the same
// residency), and the typed accessors live with the daemon, which knows
// what each key prefix holds.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/lru"
)

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts Do calls served from the cache without waiting.
	Hits uint64
	// Builds counts Do calls that ran their build function — for a given
	// key mix this is the number of compiles actually paid.
	Builds uint64
	// Coalesced counts Do calls that found their key mid-build and waited
	// for the leader instead of building — the singleflight savings.
	Coalesced uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Inflight is the number of builds currently running.
	Inflight int
	// Len is the number of resident entries.
	Len int
}

// flight is one in-progress build; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Store is a bounded content-addressed cache with singleflight build
// deduplication. Safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	c        *lru.Cache[string, any]
	inflight map[string]*flight

	hits, builds, coalesced uint64
}

// New returns an empty store bounded to capacity resident entries.
func New(capacity int) *Store {
	return &Store{
		c:        lru.New[string, any](capacity),
		inflight: make(map[string]*flight),
	}
}

// Do returns the artifact for key, building it with build on first use.
// Concurrent calls for the same missing key run build exactly once: one
// caller builds, the rest wait and share the result. hit reports whether
// this call avoided running build (cache hit or coalesced wait). A build
// error is returned to the leader and every coalesced waiter, and is not
// cached — the next Do retries.
func (s *Store) Do(key string, build func() (any, error)) (v any, hit bool, err error) {
	s.mu.Lock()
	if v, ok := s.c.Get(key); ok {
		s.hits++
		s.mu.Unlock()
		return v, true, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.builds++
	s.mu.Unlock()

	f.val, f.err = build()

	s.mu.Lock()
	if f.err == nil {
		s.c.Add(key, f.val)
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Get returns the cached artifact for key without building, promoting it
// on hit. An in-flight build does not count as present.
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.c.Get(key); ok {
		s.hits++
		return v, true
	}
	return nil, false
}

// Contains reports whether key is resident, without promoting it or
// touching the counters — the warm/cold probe the daemon tags jobs with.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.c.Peek(key)
	return ok
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.c.Stats()
	return Stats{
		Hits:      s.hits,
		Builds:    s.builds,
		Coalesced: s.coalesced,
		Evictions: ls.Evictions,
		Inflight:  len(s.inflight),
		Len:       ls.Len,
	}
}

// HashBytes returns the content address of a submission body: a
// truncated hex SHA-256. 96 bits keeps keys short in logs while staying
// far beyond birthday range for any plausible fleet population.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:12])
}
