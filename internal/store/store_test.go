package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSingleflightBuildsOnce is the acceptance-criteria assertion behind
// the fleet daemon's compile deduplication: N concurrent requests for
// one missing key run the build function exactly once, and every caller
// gets the same value. Run under -race in CI.
func TestSingleflightBuildsOnce(t *testing.T) {
	const waiters = 64
	s := New(8)
	var builds atomic.Int64
	gate := make(chan struct{})

	var wg sync.WaitGroup
	vals := make([]any, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, hit, err := s.Do("netlist:abc", func() (any, error) {
				builds.Add(1)
				return "compiled", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			vals[i], hits[i] = v, hit
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for %d concurrent callers, want exactly 1", n, waiters)
	}
	misses := 0
	for i := range vals {
		if vals[i] != "compiled" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers reported hit=false, want exactly the one leader", misses)
	}
	st := s.Stats()
	if st.Builds != 1 {
		t.Errorf("Stats.Builds = %d, want 1", st.Builds)
	}
	if st.Hits+st.Coalesced != waiters-1 {
		t.Errorf("Hits+Coalesced = %d, want %d", st.Hits+st.Coalesced, waiters-1)
	}
	if st.Inflight != 0 {
		t.Errorf("Inflight = %d after quiesce, want 0", st.Inflight)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := New(4)
	var builds int
	fail := errors.New("compile failed")
	_, _, err := s.Do("k", func() (any, error) { builds++; return nil, fail })
	if !errors.Is(err, fail) {
		t.Fatalf("first Do err = %v, want %v", err, fail)
	}
	v, hit, err := s.Do("k", func() (any, error) { builds++; return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("retry Do = (%v, %v, %v), want (7, false, nil)", v, hit, err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (error must not be cached)", builds)
	}
	if st := s.Stats(); st.Len != 1 {
		t.Fatalf("Len = %d, want 1", st.Len)
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	const capacity = 8
	s := New(capacity)
	for i := 0; i < 3*capacity; i++ {
		key := fmt.Sprintf("cold:%d", i)
		if _, _, err := s.Do(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Len > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", st.Len, capacity)
	}
	if st.Evictions != 2*capacity {
		t.Fatalf("Evictions = %d, want %d", st.Evictions, 2*capacity)
	}
	// The hottest (most recent) key must still be resident.
	if !s.Contains(fmt.Sprintf("cold:%d", 3*capacity-1)) {
		t.Error("most recent entry was evicted")
	}
	if s.Contains("cold:0") {
		t.Error("oldest entry survived past capacity")
	}
}

func TestContainsDoesNotPromoteOrCount(t *testing.T) {
	s := New(2)
	s.Do("a", func() (any, error) { return 1, nil })
	s.Do("b", func() (any, error) { return 2, nil })
	before := s.Stats()
	if !s.Contains("a") {
		t.Fatal("a missing")
	}
	if after := s.Stats(); after.Hits != before.Hits {
		t.Errorf("Contains advanced Hits: %d -> %d", before.Hits, after.Hits)
	}
	// a was probed but not promoted, so it is still the LRU entry.
	s.Do("c", func() (any, error) { return 3, nil })
	if s.Contains("a") {
		t.Error("a survived eviction — Contains promoted it")
	}
}

// TestConcurrentMixedKeys drives hot and cold traffic from many
// goroutines at once — the fleet's submission mix in miniature — and
// checks the counter algebra afterwards. Run under -race in CI.
func TestConcurrentMixedKeys(t *testing.T) {
	const (
		goroutines = 16
		iters      = 400
	)
	s := New(8)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("hot:%d", i%4)
				if i%8 == 7 { // a cold one-shot key per 8 requests
					key = fmt.Sprintf("cold:%d:%d", g, i)
				}
				v, _, err := s.Do(key, func() (any, error) { return key, nil })
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v != key {
					t.Errorf("Do(%s) = %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if total := st.Hits + st.Coalesced + st.Builds; total != goroutines*iters {
		t.Errorf("Hits+Coalesced+Builds = %d, want %d", total, goroutines*iters)
	}
	if st.Inflight != 0 {
		t.Errorf("Inflight = %d after quiesce", st.Inflight)
	}
}

func TestHashBytes(t *testing.T) {
	a := HashBytes([]byte("module alu"))
	b := HashBytes([]byte("module alu"))
	c := HashBytes([]byte("module fpu"))
	if a != b {
		t.Errorf("hash not deterministic: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("distinct content collided: %s", a)
	}
	if len(a) != 24 {
		t.Errorf("hash length = %d, want 24 hex chars", len(a))
	}
}
