// Package module defines the common shape of a hardware module under
// analysis (the paper analyzes the ALU and the FPU of the CV32E40P). A
// Module bundles the synthesized netlist with the metadata every workflow
// phase needs: the clock tree for skew analysis, the pipeline latency and
// port protocol for trace-to-instruction lifting, the golden behavioural
// model for expected-value computation, and the operation-validity
// predicate that becomes the BMC assume-property.
package module

import (
	"repro/internal/netlist"
	"repro/internal/synth"
)

// Port-name conventions shared by all modules. Every module has:
//
//	inputs:  clk, in_valid (1), op (OpWidth), a (32), b (32)
//	outputs: out_valid (1), result (32), flags (FlagWidth)
//
// Inputs presented with in_valid=1 at cycle t produce out_valid=1 and the
// corresponding result/flags at cycle t+Latency.
const (
	PortInValid  = "in_valid"
	PortOp       = "op"
	PortA        = "a"
	PortB        = "b"
	PortOutValid = "out_valid"
	PortResult   = "result"
	PortFlags    = "flags"
)

// Module is a synthesized hardware unit plus its analysis metadata.
type Module struct {
	Name    string // "ALU" or "FPU"
	Netlist *netlist.Netlist
	Tree    *synth.ClockTree

	Latency   int     // input-to-output pipeline depth in cycles
	OpWidth   int     // width of the op port
	FlagWidth int     // width of the flags port
	PeriodPs  float64 // target clock period (ps)

	// SynthMargin is the relative slack margin the synthesis/P&R flow
	// achieved at signoff (fresh WNS = SynthMargin × PeriodPs). STA
	// calibration turns it into a global delay scale; timing-critical
	// blocks close with thinner margins and are therefore more exposed
	// to aging.
	SynthMargin float64

	// Golden computes the architectural result and flags for an
	// operation; it is the reference the lifted test cases check against.
	Golden func(op uint32, a, b uint32) (result uint32, flags uint32)

	// OpValid reports whether an op encoding is legal. Illegal encodings
	// are excluded from BMC traces via an assume-property, mirroring the
	// paper's §3.3.3 input restrictions.
	OpValid func(op uint32) bool

	// StickyFlags reports whether the flags port accumulates (ORs) across
	// operations architecturally (true for the FPU's fcsr flags). This is
	// what makes some FPU failures observable only through an
	// already-set status flag — the paper's "FC" outcome.
	StickyFlags bool
}

// FrequencyMHz converts the period target to MHz for reports.
func (m *Module) FrequencyMHz() float64 { return 1e6 / m.PeriodPs }

// Clone returns a module whose netlist is a deep structural copy, for
// callers that want hard isolation between concurrent instrumentation
// passes. The metadata, golden model, and clock tree are shared: they
// are immutable after Build. Note that instrumentation itself never
// mutates its source netlist (it builds through netlist.NewBuilderFrom,
// which copies), so sharing one Module across the worker pool is safe;
// Clone exists for defense in depth and for tests that prove the
// concurrency invariants hold.
func (m *Module) Clone() *Module {
	c := *m
	c.Netlist = m.Netlist.Clone()
	return &c
}
