package module

import (
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Driver executes operations on a module's netlist (or on a failing
// variant of it) through the valid handshake, the way the surrounding CPU
// pipeline would. It is the bridge used both for golden-vs-netlist
// equivalence tests and for running lifted test cases against failing
// netlists.
type Driver struct {
	M   *Module
	Sim *sim.Simulator
}

// NewDriver drives the module's own netlist.
func NewDriver(m *Module) *Driver { return NewDriverOn(m, m.Netlist) }

// NewDriverOn drives an alternative netlist (typically a failing netlist
// produced by failure-model instrumentation) that shares the module's
// port protocol.
func NewDriverOn(m *Module, nl *netlist.Netlist) *Driver {
	return &Driver{M: m, Sim: sim.New(nl)}
}

// StallLimit is how many cycles past the nominal latency Exec waits for
// out_valid before declaring the unit hung. A real integration would be a
// watchdog; the bound only needs to exceed the pipeline depth. Exported
// because the packed fault-campaign driver (internal/inject) must wait
// the exact same number of cycles to classify a lane as stalled.
const StallLimit = 8

// Exec presents one operation and waits for the result. ok=false means
// the unit never raised out_valid — the stall ("S") failure mode of the
// paper's Table 6.
func (d *Driver) Exec(op, a, b uint32) (result, flags uint32, ok bool) {
	s := d.Sim
	s.SetInput(PortInValid, 1)
	s.SetInput(PortOp, uint64(op))
	s.SetInput(PortA, uint64(a))
	s.SetInput(PortB, uint64(b))
	s.Step()
	s.SetInput(PortInValid, 0)
	for i := 0; i < d.M.Latency+StallLimit; i++ {
		if s.Output(PortOutValid) == 1 {
			return uint32(s.Output(PortResult)), uint32(s.Output(PortFlags)), true
		}
		s.Step()
	}
	return 0, 0, false
}

// ExecPipelined presents a stream of back-to-back operations (one per
// cycle) and collects the results in order. It exercises the pipeline the
// way a representative workload does during SP profiling. ok=false if
// fewer results than operations emerged.
func (d *Driver) ExecPipelined(ops []uint32, as, bs []uint32) (results []uint32, flagsOut []uint32, ok bool) {
	s := d.Sim
	total := len(ops)
	collected := 0
	for cyc := 0; cyc < total+d.M.Latency+StallLimit && collected < total; cyc++ {
		if cyc < total {
			s.SetInput(PortInValid, 1)
			s.SetInput(PortOp, uint64(ops[cyc]))
			s.SetInput(PortA, uint64(as[cyc]))
			s.SetInput(PortB, uint64(bs[cyc]))
		} else {
			s.SetInput(PortInValid, 0)
		}
		if s.Output(PortOutValid) == 1 {
			results = append(results, uint32(s.Output(PortResult)))
			flagsOut = append(flagsOut, uint32(s.Output(PortFlags)))
			collected++
		}
		s.Step()
	}
	return results, flagsOut, collected == total
}
