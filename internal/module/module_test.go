package module_test

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/module"
	"repro/internal/netlist"
)

func TestFrequencyMHz(t *testing.T) {
	m := &module.Module{PeriodPs: 4000}
	if m.FrequencyMHz() != 250 {
		t.Errorf("got %v", m.FrequencyMHz())
	}
}

func TestDriverStallDetection(t *testing.T) {
	// A degenerate "module" whose out_valid is tied low: Exec must time
	// out and report the stall.
	b := netlist.NewBuilder("dead")
	clk := b.Clock("clk")
	iv := b.Input(module.PortInValid)
	op := b.InputBus(module.PortOp, 2)
	a := b.InputBus(module.PortA, 32)
	bb := b.InputBus(module.PortB, 32)
	_ = op
	zero := b.Add(cell.TIE0)
	res := make(netlist.Bus, 32)
	for i := range res {
		res[i] = b.AddDFF(a[i], clk, false)
	}
	_ = bb
	_ = iv
	b.OutputBus(module.PortResult, res)
	b.OutputBus(module.PortFlags, netlist.Bus{zero})
	b.Output(module.PortOutValid, zero)
	nl := b.MustBuild()
	m := &module.Module{Name: "DEAD", Netlist: nl, Latency: 2, OpWidth: 2, FlagWidth: 1}
	d := module.NewDriver(m)
	if _, _, ok := d.Exec(0, 1, 2); ok {
		t.Fatal("dead module must report a stall")
	}
}

func TestExecPipelinedDrainFailure(t *testing.T) {
	m := alu.Build()
	d := module.NewDriver(m)
	res, flags, ok := d.ExecPipelined(
		[]uint32{0, 1}, []uint32{5, 9}, []uint32{3, 4})
	if !ok || len(res) != 2 || len(flags) != 2 {
		t.Fatalf("pipelined exec failed: %v %v %v", res, flags, ok)
	}
	if res[0] != 8 || res[1] != 5 {
		t.Errorf("results = %v", res)
	}
}
