package lift

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// FuzzConfig tunes the fuzzing-based constructor.
type FuzzConfig struct {
	// Attempts bounds the random bursts tried per (pair, C) variant
	// (default 2000).
	Attempts int
	// Seed makes runs reproducible.
	Seed int64
	// MaxOps is the burst length to explore (default 2 plus the
	// conditioning op).
	MaxOps int
	// Guided biases operand generation to toggle the fault's launching
	// register between consecutive operations — the paper's idea of
	// harnessing Aging Analysis insights to filter effective tests
	// (§6.3). Unguided fuzzing flips coins everywhere.
	Guided bool
}

func (c *FuzzConfig) fill() {
	if c.Attempts == 0 {
		c.Attempts = 2000
	}
	if c.MaxOps == 0 {
		c.MaxOps = 2
	}
}

// FuzzConstruct is the paper's §6.3 alternative Error Lifting backend:
// instead of proving a trace with the model checker, it fuzzes short
// operation bursts against the failing netlist and keeps the first burst
// whose architectural outputs diverge from the golden model. It is
// cheaper per test than BMC but offers no unreachability verdicts: an
// exhausted budget reports FormalTimeout ("we do not know"), never
// Unreachable.
func FuzzConstruct(m *module.Module, pair sta.Pair, pathType sta.PathType, cfg FuzzConfig) []Result {
	cfg.fill()
	var out []Result
	for _, c := range []fault.CValue{fault.C0, fault.C1} {
		spec := fault.Spec{Type: pathType, Start: pair.Start, End: pair.End, C: c}
		out = append(out, fuzzOne(m, spec, cfg))
	}
	return out
}

func fuzzOne(m *module.Module, spec fault.Spec, cfg FuzzConfig) Result {
	failing := fault.FailingNetlist(m.Netlist, spec)
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(spec.Start)<<17 ^ int64(spec.End) ^ int64(spec.C)))
	var numOps uint32
	for m.OpValid(numOps) {
		numOps++
	}

	// Aging-analysis hint: if X is an operand-register bit, toggling
	// that exact bit between operations is what arms the failure model.
	port, bit, hinted := launchOperandBit(m, spec.Start)

	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		ops := []OpStim{{}} // reset-state conditioning, as in Convert
		for k := 0; k < cfg.MaxOps; k++ {
			op := OpStim{Op: rng.Uint32() % numOps, A: rng.Uint32(), B: rng.Uint32()}
			if cfg.Guided && hinted {
				// Toggle the launching bit relative to the previous op.
				prev := ops[len(ops)-1]
				var prevBit uint32
				if port == module.PortA {
					prevBit = prev.A >> bit & 1
				} else {
					prevBit = prev.B >> bit & 1
				}
				want := prevBit ^ 1
				if port == module.PortA {
					op.A = op.A&^(1<<bit) | want<<bit
				} else {
					op.B = op.B&^(1<<bit) | want<<bit
				}
			}
			ops = append(ops, op)
		}

		if coverOp, kind, ok := divergesOn(m, failing, ops); ok {
			tc := &TestCase{
				Name:        fmt.Sprintf("%s_fuzz_%s", m.Name, sanitizeName(spec.Name(m.Netlist))),
				Unit:        m.Name,
				Spec:        spec,
				Ops:         ops[:coverOp+1],
				CoverOp:     coverOp,
				CoverKind:   kind,
				Conditioned: true,
			}
			for _, op := range tc.Ops {
				res, flags := m.Golden(op.Op, op.A, op.B)
				tc.Expected = append(tc.Expected, OpExpect{Result: res, Flags: flags})
			}
			// Reuse the formal backend's convertibility filters.
			var convErr error
			switch m.Name {
			case "ALU":
				convErr = checkALUConvertible(m, tc)
			case "FPU":
				convErr = checkFPUConvertible(m, tc)
			}
			if convErr != nil {
				continue // keep fuzzing for a convertible burst
			}
			return Result{Spec: spec, Outcome: Success, Case: tc, Reason: fmt.Sprintf("fuzz attempt %d", attempt+1)}
		}
	}
	return Result{Spec: spec, Outcome: FormalTimeout, Reason: "fuzz budget exhausted (no unreachability proof available)"}
}

// divergesOn executes a burst on the failing netlist and reports the
// first operation whose result or flags differ from golden (or a stall).
func divergesOn(m *module.Module, failing *netlist.Netlist, ops []OpStim) (int, CoverKind, bool) {
	d := module.NewDriverOn(m, failing)
	for i, op := range ops {
		res, flags, ok := d.Exec(op.Op, op.A, op.B)
		if !ok {
			return i, CoverHandshake, true
		}
		wantRes, wantFlags := m.Golden(op.Op, op.A, op.B)
		if res != wantRes {
			return i, CoverResult, true
		}
		if flags != wantFlags {
			// Identify the lowest differing flag bit.
			diff := flags ^ wantFlags
			bitIdx := 0
			for diff&1 == 0 {
				diff >>= 1
				bitIdx++
			}
			return i, CoverFlags, true
		}
	}
	return 0, CoverResult, false
}

// launchOperandBit reports whether the fault's launching flip-flop is an
// operand register, and if so which port and bit it captures.
func launchOperandBit(m *module.Module, ff netlist.CellID) (string, uint, bool) {
	d := m.Netlist.Cells[ff].In[0]
	for _, name := range []string{module.PortA, module.PortB} {
		p, ok := m.Netlist.FindInput(name)
		if !ok {
			continue
		}
		for i, n := range p.Bits {
			if n == d {
				return name, uint(i), true
			}
		}
	}
	return "", 0, false
}
