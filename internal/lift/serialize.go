package lift

import (
	"encoding/json"
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// The paper's §6.3 envisions a commercial split: the chip manufacturer
// (who holds the netlist and the aging models) generates the test suite;
// the data-center operator (who holds neither) deploys it. This file is
// that hand-off: a suite serializes to a self-contained JSON document
// with no netlist references beyond stable cell names, and deserializes
// into a runnable Suite on the operator's side.

// suiteDoc is the wire format.
type suiteDoc struct {
	Version int       `json:"version"`
	Unit    string    `json:"unit"`
	Cases   []caseDoc `json:"cases"`
}

type caseDoc struct {
	Name        string   `json:"name"`
	PathType    string   `json:"path_type"`
	StartCell   int32    `json:"start_cell"`
	EndCell     int32    `json:"end_cell"`
	CValue      string   `json:"c"`
	Edge        string   `json:"edge"`
	Ops         []opDoc  `json:"ops"`
	Expected    []expDoc `json:"expected"`
	CoverOp     int      `json:"cover_op"`
	CoverKind   string   `json:"cover_kind"`
	FlagsBit    int      `json:"flags_bit,omitempty"`
	Conditioned bool     `json:"conditioned"`
}

type opDoc struct {
	Op uint32 `json:"op"`
	A  uint32 `json:"a"`
	B  uint32 `json:"b"`
}

type expDoc struct {
	Result uint32 `json:"result"`
	Flags  uint32 `json:"flags"`
}

const suiteVersion = 1

var coverKindNames = map[CoverKind]string{
	CoverResult: "result", CoverFlags: "flags", CoverHandshake: "handshake",
}

// MarshalJSON serializes the suite for distribution.
func (s *Suite) MarshalJSON() ([]byte, error) {
	doc := suiteDoc{Version: suiteVersion, Unit: s.Unit}
	for _, tc := range s.Cases {
		cd := caseDoc{
			Name:        tc.Name,
			PathType:    tc.Spec.Type.String(),
			StartCell:   int32(tc.Spec.Start),
			EndCell:     int32(tc.Spec.End),
			CValue:      tc.Spec.C.String(),
			Edge:        tc.Spec.Edge.String(),
			CoverOp:     tc.CoverOp,
			CoverKind:   coverKindNames[tc.CoverKind],
			FlagsBit:    tc.FlagsBit,
			Conditioned: tc.Conditioned,
		}
		for _, op := range tc.Ops {
			cd.Ops = append(cd.Ops, opDoc(op))
		}
		for _, e := range tc.Expected {
			cd.Expected = append(cd.Expected, expDoc(e))
		}
		doc.Cases = append(doc.Cases, cd)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalJSON restores a suite from its wire format.
func (s *Suite) UnmarshalJSON(data []byte) error {
	var doc suiteDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Version != suiteVersion {
		return fmt.Errorf("lift: unsupported suite version %d", doc.Version)
	}
	s.Unit = doc.Unit
	s.Cases = nil
	for i, cd := range doc.Cases {
		tc := &TestCase{
			Name:        cd.Name,
			Unit:        doc.Unit,
			CoverOp:     cd.CoverOp,
			FlagsBit:    cd.FlagsBit,
			Conditioned: cd.Conditioned,
		}
		var ok bool
		if tc.CoverKind, ok = coverKindByName(cd.CoverKind); !ok {
			return fmt.Errorf("lift: case %d: unknown cover kind %q", i, cd.CoverKind)
		}
		tc.Spec = fault.Spec{
			Start: cellID(cd.StartCell),
			End:   cellID(cd.EndCell),
		}
		switch cd.PathType {
		case "setup":
			tc.Spec.Type = sta.Setup
		case "hold":
			tc.Spec.Type = sta.Hold
		default:
			return fmt.Errorf("lift: case %d: unknown path type %q", i, cd.PathType)
		}
		switch cd.CValue {
		case "0":
			tc.Spec.C = fault.C0
		case "1":
			tc.Spec.C = fault.C1
		case "R":
			tc.Spec.C = fault.CRandom
		default:
			return fmt.Errorf("lift: case %d: unknown C %q", i, cd.CValue)
		}
		switch cd.Edge {
		case "any":
			tc.Spec.Edge = fault.AnyChange
		case "rise":
			tc.Spec.Edge = fault.RisingEdge
		case "fall":
			tc.Spec.Edge = fault.FallingEdge
		default:
			return fmt.Errorf("lift: case %d: unknown edge %q", i, cd.Edge)
		}
		if len(cd.Ops) != len(cd.Expected) || len(cd.Ops) == 0 {
			return fmt.Errorf("lift: case %d: ops/expected mismatch", i)
		}
		if cd.CoverOp < 0 || cd.CoverOp >= len(cd.Ops) {
			return fmt.Errorf("lift: case %d: cover op %d out of range", i, cd.CoverOp)
		}
		for _, op := range cd.Ops {
			tc.Ops = append(tc.Ops, OpStim(op))
		}
		for _, e := range cd.Expected {
			tc.Expected = append(tc.Expected, OpExpect(e))
		}
		s.Cases = append(s.Cases, tc)
	}
	return nil
}

func cellID(v int32) netlist.CellID { return netlist.CellID(v) }

func coverKindByName(name string) (CoverKind, bool) {
	for k, n := range coverKindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}
