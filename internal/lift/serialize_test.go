package lift

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestSuiteJSONRoundTrip(t *testing.T) {
	m, pairs := agedALUPairs(t)
	orig, _ := buildALUSuite(t, m, pairs, true)

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version":1`) {
		t.Error("version tag missing")
	}
	var back Suite
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Unit != orig.Unit || len(back.Cases) != len(orig.Cases) {
		t.Fatalf("shape lost: %s/%d vs %s/%d", back.Unit, len(back.Cases), orig.Unit, len(orig.Cases))
	}
	for i := range orig.Cases {
		a, b := orig.Cases[i], back.Cases[i]
		if a.Spec != b.Spec || a.CoverOp != b.CoverOp || a.CoverKind != b.CoverKind ||
			a.Conditioned != b.Conditioned || len(a.Ops) != len(b.Ops) {
			t.Fatalf("case %d differs:\n%+v\n%+v", i, a, b)
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] || a.Expected[j] != b.Expected[j] {
				t.Fatalf("case %d op %d differs", i, j)
			}
		}
	}

	// The deserialized suite must run: identical image, clean pass on
	// the healthy gate-level CPU.
	imgA, imgB := mustImage(t, orig), mustImage(t, &back)
	if len(imgA.Words) != len(imgB.Words) {
		t.Fatalf("image sizes differ: %d vs %d", len(imgA.Words), len(imgB.Words))
	}
	for i := range imgA.Words {
		if imgA.Words[i] != imgB.Words[i] {
			t.Fatalf("image word %d differs", i)
		}
	}
	c := cpu.New(memSize)
	c.ALU = cpu.NewNetlistALU(m, m.Netlist)
	c.Load(imgB)
	if halt := c.Run(50_000_000); halt != cpu.HaltExit || c.ExitCode != 0 {
		t.Fatalf("deserialized suite failed on healthy CPU: %v", halt)
	}
}

func TestSuiteJSONRejectsBadDocs(t *testing.T) {
	var s Suite
	bad := []string{
		`{"version":99,"unit":"ALU","cases":[]}`,
		`{"version":1,"unit":"ALU","cases":[{"path_type":"diag","c":"0","edge":"any","ops":[{"op":0}],"expected":[{}],"cover_kind":"result"}]}`,
		`{"version":1,"unit":"ALU","cases":[{"path_type":"setup","c":"2","edge":"any","ops":[{"op":0}],"expected":[{}],"cover_kind":"result"}]}`,
		`{"version":1,"unit":"ALU","cases":[{"path_type":"setup","c":"0","edge":"any","ops":[],"expected":[],"cover_kind":"result"}]}`,
		`{"version":1,"unit":"ALU","cases":[{"path_type":"setup","c":"0","edge":"any","ops":[{"op":0}],"expected":[{}],"cover_kind":"banana"}]}`,
	}
	for i, doc := range bad {
		if err := json.Unmarshal([]byte(doc), &s); err == nil {
			t.Errorf("bad doc %d accepted", i)
		}
	}
}
