package lift

import (
	"fmt"
	"math/rand"

	"repro/internal/alu"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/module"
)

// Register conventions of the emitted templates. Tests preload all
// operand registers first and then issue the module operations
// back-to-back, so that the unit-level stimulus matches the trace (no
// other instructions touch the unit inside the burst).
var (
	opndRegs = [maxOpsPerCase][2]isa.Reg{
		{isa.T0, isa.T1}, {isa.T2, isa.T3}, {isa.T4, isa.T5},
		{isa.A2, isa.A3}, {isa.A4, isa.A5},
	}
	rdRegs  = [maxOpsPerCase]isa.Reg{isa.T6, isa.A6, isa.A7, isa.S2, isa.S3}
	expReg  = isa.S4
	tmpReg  = isa.S5
	caseReg = isa.S1 // current case index, for failure attribution
)

// ClobberedIntRegs lists every integer register the templates may write;
// integration wrappers save and restore them.
func ClobberedIntRegs() []isa.Reg {
	regs := []isa.Reg{expReg, tmpReg, caseReg}
	for _, p := range opndRegs {
		regs = append(regs, p[0], p[1])
	}
	return append(regs, rdRegs[:]...)
}

var aluToISA = map[alu.Op]isa.Op{
	alu.OpAdd: isa.ADD, alu.OpSub: isa.SUB, alu.OpAnd: isa.AND,
	alu.OpOr: isa.OR, alu.OpXor: isa.XOR, alu.OpSll: isa.SLL,
	alu.OpSrl: isa.SRL, alu.OpSra: isa.SRA, alu.OpSlt: isa.SLT,
	alu.OpSltu: isa.SLTU,
}

var fpuToISA = map[fpu.Op]isa.Op{
	fpu.OpFadd: isa.FADDS, fpu.OpFsub: isa.FSUBS, fpu.OpFmul: isa.FMULS,
	fpu.OpFmin: isa.FMINS, fpu.OpFmax: isa.FMAXS,
	fpu.OpFle: isa.FLES, fpu.OpFlt: isa.FLTS, fpu.OpFeq: isa.FEQS,
	fpu.OpFsgnj: isa.FSGNJS, fpu.OpFsgnjn: isa.FSGNJNS, fpu.OpFsgnjx: isa.FSGNJXS,
	fpu.OpFclass: isa.FCLASSS,
}

// loadExpected materializes a golden constant through the data memory
// (constant pool + LW): a check value must not travel through the unit
// under test, or a systematic fault corrupts the result and its
// reference identically and the comparison self-cancels.
func loadExpected(a *isa.Asm, rd isa.Reg, v uint32) {
	label := fmt.Sprintf("vega_const_%x_%d", a.PC(), a.DataLen())
	a.Word(label, v)
	a.LwGlobal(rd, label)
}

// EmitInto appends the test case to the assembler; on detection the code
// branches to failLabel.
func (tc *TestCase) EmitInto(a *isa.Asm, failLabel string) {
	switch tc.Unit {
	case "ALU":
		tc.emitALU(a, failLabel)
	case "FPU":
		tc.emitFPU(a, failLabel)
	default:
		panic("lift: unknown unit " + tc.Unit)
	}
}

func (tc *TestCase) emitALU(a *isa.Asm, failLabel string) {
	// Preloads.
	for i, op := range tc.Ops {
		a.Li(opndRegs[i][0], op.A)
		a.Li(opndRegs[i][1], op.B)
	}
	// Burst.
	for i, op := range tc.Ops {
		ra, rb := opndRegs[i][0], opndRegs[i][1]
		if tc.CoverKind == CoverFlags && i == tc.CoverOp {
			// Flags faults are observable through branch resolution:
			// branch in the direction golden flags say must NOT be
			// taken.
			eq, lt, ltu := GoldenALUFlags(op.A, op.B)
			if eq {
				a.Bne(ra, rb, failLabel)
			} else {
				a.Beq(ra, rb, failLabel)
			}
			if lt {
				a.Bge(ra, rb, failLabel)
			} else {
				a.Blt(ra, rb, failLabel)
			}
			if ltu {
				a.Bgeu(ra, rb, failLabel)
			} else {
				a.Bltu(ra, rb, failLabel)
			}
			continue
		}
		a.R(aluToISA[alu.Op(op.Op)], rdRegs[i], ra, rb)
	}
	// Checks (the conditioning op is activation-only, not checked).
	for i := range tc.Ops {
		if tc.CoverKind == CoverFlags && i == tc.CoverOp {
			continue
		}
		if tc.Conditioned && i == 0 {
			continue
		}
		loadExpected(a, expReg, tc.Expected[i].Result)
		a.Bne(rdRegs[i], expReg, failLabel)
	}
}

func (tc *TestCase) emitFPU(a *isa.Asm, failLabel string) {
	a.Csrrw(isa.Zero, isa.CSRFflags, isa.Zero) // clear sticky flags
	// Preloads (FMV.W.X does not touch the FPU datapath under test).
	for i, op := range tc.Ops {
		fa, fb := fpReg(i, 0), fpReg(i, 1)
		a.Li(tmpReg, op.A)
		a.FmvWX(fa, tmpReg)
		a.Li(tmpReg, op.B)
		a.FmvWX(fb, tmpReg)
	}
	// Burst.
	for i, op := range tc.Ops {
		fa, fb := fpReg(i, 0), fpReg(i, 1)
		o := fpu.Op(op.Op)
		iop, ok := fpuToISA[o]
		if !ok {
			panic(fmt.Sprintf("lift: unmapped FPU op %v", o))
		}
		if fpuOpWritesInt(o) {
			if o == fpu.OpFclass {
				a.Fclass(rdRegs[i], fa)
			} else {
				a.R(iop, rdRegs[i], fa, fb)
			}
		} else {
			a.R(iop, fpResReg(i), fa, fb)
		}
	}
	// Checks (the conditioning op is activation-only, not checked).
	for i, op := range tc.Ops {
		if tc.Conditioned && i == 0 {
			continue
		}
		o := fpu.Op(op.Op)
		if fpuOpWritesInt(o) {
			loadExpected(a, expReg, tc.Expected[i].Result)
			a.Bne(rdRegs[i], expReg, failLabel)
		} else {
			a.FmvXW(tmpReg, fpResReg(i))
			loadExpected(a, expReg, tc.Expected[i].Result)
			a.Bne(tmpReg, expReg, failLabel)
		}
	}
	// Sticky flags check.
	a.Csrrs(tmpReg, isa.CSRFflags, isa.Zero)
	loadExpected(a, expReg, stickyFlags(tc))
	a.Bne(tmpReg, expReg, failLabel)
}

func fpReg(i, which int) isa.Reg { return isa.Reg(1 + 2*i + which) }
func fpResReg(i int) isa.Reg     { return isa.Reg(11 + i) }

// Suite is an ordered collection of test cases for one unit.
type Suite struct {
	Unit  string
	Cases []*TestCase
}

// Image assembles the suite into a standalone program: cases run in
// order; a detection traps via ebreak with the case index in s1; clean
// completion exits 0. Assembly errors are returned so a malformed
// (e.g. campaign-generated or deserialized) suite fails its one run
// rather than panicking the process.
func (s *Suite) Image() (*isa.Image, error) {
	a := isa.NewAsm()
	s.emitCases(a, "")
	a.Li(isa.A0, 0)
	a.Ecall()
	img, err := a.Assemble()
	if err != nil {
		return nil, fmt.Errorf("lift: suite %s: %w", s.Unit, err)
	}
	return img, nil
}

// EmitInto appends the whole suite (without the harness) to an existing
// assembler, for integration into applications; detections jump to
// failLabel.
func (s *Suite) EmitInto(a *isa.Asm, failLabel string) {
	s.emitCases(a, failLabel)
}

// emitCases emits every case with a local fail stub (conditional-branch
// reach is only ±4KiB, so large suites cannot branch to one distant
// handler). An empty failLabel makes the stub trap in place (ebreak);
// otherwise it jumps on.
func (s *Suite) emitCases(a *isa.Asm, failLabel string) {
	for i, tc := range s.Cases {
		a.Lui(caseReg, uint32(i)<<12) // LUI bypasses the unit under test
		localFail := fmt.Sprintf("vega_fail_%d_%x", i, a.PC())
		next := fmt.Sprintf("vega_next_%d_%x", i, a.PC())
		tc.EmitInto(a, localFail)
		a.J(next)
		a.Label(localFail)
		if failLabel == "" {
			a.Ebreak()
		} else {
			a.J(failLabel)
		}
		a.Label(next)
	}
}

// InstCount reports the number of instructions the suite expands to.
func (s *Suite) InstCount() (int, error) {
	img, err := s.Image()
	if err != nil {
		return 0, err
	}
	return len(img.Insts), nil
}

// RandomSuite builds the paper's Table 7 baseline: test cases in the
// style and quantity of Vega's, but each verifying one random operation
// of the unit with random operands.
func RandomSuite(m *module.Module, n int, seed int64) *Suite {
	rng := rand.New(rand.NewSource(seed))
	var numOps uint32
	for m.OpValid(numOps) {
		numOps++
	}
	s := &Suite{Unit: m.Name}
	for i := 0; i < n; i++ {
		op := rng.Uint32() % numOps
		var A, B uint32
		if m.Name == "FPU" {
			A, B = randFloatBits(rng), randFloatBits(rng)
		} else {
			A, B = rng.Uint32(), rng.Uint32()
		}
		res, flags := m.Golden(op, A, B)
		s.Cases = append(s.Cases, &TestCase{
			Name:      fmt.Sprintf("random_%s_%d", m.Name, i),
			Unit:      m.Name,
			Ops:       []OpStim{{Op: op, A: A, B: B}},
			Expected:  []OpExpect{{Result: res, Flags: flags}},
			CoverKind: CoverResult,
		})
	}
	return s
}

func randFloatBits(rng *rand.Rand) uint32 {
	switch rng.Intn(4) {
	case 0:
		// Moderate-exponent normals (the bulk of real operands).
		return uint32(rng.Intn(2))<<31 | uint32(110+rng.Intn(36))<<23 | uint32(rng.Intn(1<<23))
	default:
		return rng.Uint32()
	}
}

// FailedCase decodes the failing case index from the trap state (the
// case register holds index<<12, materialized with LUI so the value
// cannot be corrupted by the unit under test).
func FailedCase(s1 uint32) int { return int(s1 >> 12) }
