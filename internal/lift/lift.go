// Package lift implements the paper's Instruction Construction step
// (§3.3.5): it turns a cycle-accurate module-level trace from the
// bounded model checker into a short RISC-V test case — operand register
// preloads, a back-to-back burst of the operations the trace prescribes,
// and golden-value checks that branch to a failure trap on mismatch.
//
// Construct drives the whole Error Lifting phase for one aging-prone
// start/end pair: failure-model instrumentation, trace generation, and
// conversion, for each (C, edge-filter) variant. Its outcomes are the
// four categories of the paper's Table 4: Success, Unreachable (formally
// proven harmless), FormalTimeout, and ConversionFailure.
package lift

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/alu"
	"repro/internal/bmc"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Outcome classifies one construction attempt (the paper's Table 4).
type Outcome int

// Outcomes.
const (
	Success       Outcome = iota // "S": a test case was produced
	Unreachable                  // "UR": formally proven harmless
	FormalTimeout                // "FF": the formal tool ran out of budget
	ConvFail                     // "FC": trace exists but is not convertible
)

func (o Outcome) String() string {
	switch o {
	case Success:
		return "S"
	case Unreachable:
		return "UR"
	case FormalTimeout:
		return "FF"
	}
	return "FC"
}

// CoverKind classifies what the test case observes.
type CoverKind int

// Cover kinds.
const (
	CoverResult CoverKind = iota
	CoverFlags
	CoverHandshake
)

// OpStim is one module operation prescribed by a trace.
type OpStim struct {
	Op   uint32
	A, B uint32
}

// OpExpect is the golden outcome of an operation.
type OpExpect struct {
	Result uint32
	Flags  uint32
}

// TestCase is one lifted software test.
type TestCase struct {
	Name      string
	Unit      string // "ALU" or "FPU"
	Spec      fault.Spec
	Ops       []OpStim
	Expected  []OpExpect
	CoverOp   int // index of the operation whose output the fault corrupts
	CoverKind CoverKind
	FlagsBit  int // for CoverFlags
	// Conditioned marks a prepended reset-state-conditioning operation
	// at index 0 (§3.3.5); it activates the trace but is not checked.
	Conditioned bool
}

// Result is the outcome of one construction attempt.
type Result struct {
	Spec    fault.Spec
	Outcome Outcome
	Case    *TestCase
	// Depth is the BMC unroll depth of the verdict; for Success it is
	// the provably minimal cover depth (bmc.Result.Depth).
	Depth  int
	Reason string
	// Stats is the solver effort behind the attempt's cover query.
	Stats bmc.Stats
}

// OutcomeStats aggregates the solver effort of every attempt that ended
// in one outcome — the per-outcome cost profile of the Error Lifting
// phase (Timeouts are where the conflict budget went; Unreachables are
// where the UNSAT proofs got cheaper with incremental solving).
type OutcomeStats struct {
	Outcome  Outcome
	Attempts int
	// MinDepth/MaxDepth span the verdict depths seen (minimal cover
	// depths for Success/ConvFail, proof bounds for Unreachable).
	MinDepth, MaxDepth int
	Stats              bmc.Stats
}

// StatsByOutcome aggregates construction results per outcome, in the
// fixed order Success, Unreachable, FormalTimeout, ConvFail. Outcomes
// with no attempts are omitted.
func StatsByOutcome(results []Result) []OutcomeStats {
	byOutcome := map[Outcome]*OutcomeStats{}
	for _, r := range results {
		os, ok := byOutcome[r.Outcome]
		if !ok {
			os = &OutcomeStats{Outcome: r.Outcome, MinDepth: r.Depth, MaxDepth: r.Depth}
			byOutcome[r.Outcome] = os
		}
		os.Attempts++
		if r.Depth < os.MinDepth {
			os.MinDepth = r.Depth
		}
		if r.Depth > os.MaxDepth {
			os.MaxDepth = r.Depth
		}
		os.Stats = os.Stats.Add(r.Stats)
	}
	var out []OutcomeStats
	for _, o := range []Outcome{Success, Unreachable, FormalTimeout, ConvFail} {
		if os, ok := byOutcome[o]; ok {
			out = append(out, *os)
		}
	}
	return out
}

// Config tunes construction.
type Config struct {
	// Mitigation enables the §3.3.4 edge-filtered variants (rising and
	// falling) instead of the plain any-change activation, doubling the
	// variant count per pair.
	Mitigation   bool
	MaxDepth     int
	MaxConflicts int64
	// Stride is the BMC iterative-deepening step (default 1, which
	// makes every reported depth provably minimal).
	Stride int
	// DisableConditioning skips the reset-state-conditioning operation
	// normally prepended to every test case (§3.3.5). Ablation only: it
	// re-exposes the raw initial-value dependency of the formal traces.
	DisableConditioning bool
}

// issuePeriod is the module-cycle cadence of one offloaded instruction
// on the surrounding in-order CPU: one valid cycle plus the pipeline
// drain (module latency).
func issuePeriod(m *module.Module) int { return m.Latency + 1 }

// BMCConfig builds the module's assume-environment for a cover query —
// the same microarchitectural restrictions Construct applies — so other
// callers (cmd/vega-failnets' -cover pass, benchmarks) issue exactly the
// queries the lifting phase would.
func BMCConfig(m *module.Module, cfg Config) bmc.Config { return bmcConfig(m, cfg) }

// bmcConfig builds the module's assume-environment.
func bmcConfig(m *module.Module, cfg Config) bmc.Config {
	var ops []uint64
	for op := uint32(0); ; op++ {
		if !m.OpValid(op) {
			break
		}
		ops = append(ops, uint64(op))
	}
	return bmc.Config{
		MaxDepth:     cfg.MaxDepth,
		MaxConflicts: cfg.MaxConflicts,
		Stride:       cfg.Stride,
		Assume:       []bmc.PortConstraint{{Port: module.PortOp, Allowed: ops}},
		FixedPulse:   &bmc.Pulse{Port: module.PortInValid, Period: issuePeriod(m)},
		ValidPort:    module.PortOutValid,
	}
}

// Construct runs Error Lifting for one aging-prone pair, producing one
// Result per (C, edge) variant: 2 without mitigation, 4 with.
func Construct(m *module.Module, pair sta.Pair, pathType sta.PathType, cfg Config) []Result {
	edges := []fault.EdgeFilter{fault.AnyChange}
	if cfg.Mitigation {
		edges = []fault.EdgeFilter{fault.RisingEdge, fault.FallingEdge}
	}
	var out []Result
	for _, edge := range edges {
		for _, c := range []fault.CValue{fault.C0, fault.C1} {
			spec := fault.Spec{Type: pathType, Start: pair.Start, End: pair.End, C: c, Edge: edge}
			out = append(out, constructOne(m, spec, cfg))
		}
	}
	return out
}

func constructOne(m *module.Module, spec fault.Spec, cfg Config) Result {
	inst := fault.ShadowReplica(m.Netlist, spec)
	res := bmc.Cover(inst.Netlist, inst.Covers, bmcConfig(m, cfg))
	r := Result{Spec: spec, Depth: res.Depth, Stats: res.Stats}
	switch res.Verdict {
	case bmc.Unreachable:
		r.Outcome = Unreachable
		return r
	case bmc.Timeout:
		r.Outcome = FormalTimeout
		return r
	}
	tc, err := convert(m, spec, res.Trace, !cfg.DisableConditioning)
	if err != nil {
		r.Outcome = ConvFail
		r.Reason = err.Error()
		return r
	}
	r.Outcome = Success
	r.Case = tc
	return r
}

// Convert translates a trace into a test case, or explains why it cannot
// be (the "FC" outcome).
func Convert(m *module.Module, spec fault.Spec, tr *bmc.Trace) (*TestCase, error) {
	return convert(m, spec, tr, true)
}

func convert(m *module.Module, spec fault.Spec, tr *bmc.Trace, condition bool) (*TestCase, error) {
	period := issuePeriod(m)
	opsIn := tr.Inputs[module.PortOp]
	asIn := tr.Inputs[module.PortA]
	bsIn := tr.Inputs[module.PortB]

	var ops []OpStim
	for t := 0; t < tr.Cycles; t += period {
		ops = append(ops, OpStim{Op: uint32(opsIn[t]), A: uint32(asIn[t]), B: uint32(bsIn[t])})
	}
	if len(ops) > maxOpsPerCase {
		return nil, fmt.Errorf("trace needs %d operations, exceeding the register budget", len(ops))
	}

	kind, bit, err := classifyCover(tr.CoverPoint.Name)
	if err != nil {
		return nil, err
	}

	coverOp := len(ops) - 1
	if kind != CoverHandshake {
		if tr.CoverCycle < m.Latency {
			return nil, fmt.Errorf("divergence at cycle %d precedes any architectural result", tr.CoverCycle)
		}
		coverOp = (tr.CoverCycle - m.Latency) / period
		if coverOp >= len(ops) {
			coverOp = len(ops) - 1
		}
		// Operations after the corrupted one neither activate nor
		// observe the fault: drop them to keep the suite compact.
		ops = ops[:coverOp+1]
	}

	// State conditioning (§3.3.5's register-value mapping): the formal
	// trace assumes the unit starts from its reset state, but in a real
	// run the preceding instructions leave arbitrary values in the
	// operand and op registers. Prepending an all-zeros operation (op
	// encoding 0 with zero operands) re-establishes the reset-equivalent
	// state so the trace's activation conditions hold as proven.
	conditioned := false
	if condition && (len(ops) == 0 || ops[0] != (OpStim{})) {
		ops = append([]OpStim{{}}, ops...)
		coverOp++
		conditioned = true
	}

	tc := &TestCase{
		Name:        fmt.Sprintf("%s_%s", strings.ToLower(m.Name), sanitizeName(spec.Name(m.Netlist))),
		Unit:        m.Name,
		Spec:        spec,
		Ops:         ops,
		CoverOp:     coverOp,
		CoverKind:   kind,
		FlagsBit:    bit,
		Conditioned: conditioned,
	}
	for _, op := range ops {
		res, flags := m.Golden(op.Op, op.A, op.B)
		tc.Expected = append(tc.Expected, OpExpect{Result: res, Flags: flags})
	}

	switch m.Name {
	case "ALU":
		if err := checkALUConvertible(m, tc); err != nil {
			return nil, err
		}
	case "FPU":
		if err := checkFPUConvertible(m, tc); err != nil {
			return nil, err
		}
	}
	return tc, nil
}

// maxOpsPerCase is bounded by the temporary-register pool of the
// emission templates.
const maxOpsPerCase = 5

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

func classifyCover(name string) (CoverKind, int, error) {
	switch {
	case strings.HasPrefix(name, module.PortResult):
		return CoverResult, 0, nil
	case strings.HasPrefix(name, module.PortFlags):
		i := strings.IndexByte(name, '[')
		j := strings.IndexByte(name, ']')
		if i < 0 || j < i {
			return 0, 0, fmt.Errorf("unparseable cover point %q", name)
		}
		bit, err := strconv.Atoi(name[i+1 : j])
		if err != nil {
			return 0, 0, err
		}
		return CoverFlags, bit, nil
	case strings.HasPrefix(name, module.PortOutValid):
		return CoverHandshake, 0, nil
	default:
		// Auxiliary status outputs (busy, flags_valid) are handshake-
		// class: their corruption manifests as protocol misbehavior.
		return CoverHandshake, 0, nil
	}
}

// checkALUConvertible rejects traces this CPU cannot faithfully express.
func checkALUConvertible(m *module.Module, tc *TestCase) error {
	if tc.CoverKind != CoverFlags {
		return nil
	}
	// A flags-path fault is observable only through branch resolution,
	// so the cover operation is emitted as branch instructions (the ALU
	// computes comparison flags regardless of op). That rewrite is
	// invalid if the fault activates from an op-register bit: changing
	// the op encoding would change the activation itself.
	if isOpRegister(m, tc.Spec.Start) {
		return fmt.Errorf("flags fault launches from an op register; branch rewrite would change activation")
	}
	return nil
}

// checkFPUConvertible applies the paper's status-flag maskability rule:
// the fflags CSR accumulates (ORs) per-op flags, so a corrupted flag bit
// is invisible whenever the rest of the test's burst produces the same
// sticky value.
func checkFPUConvertible(m *module.Module, tc *TestCase) error {
	if tc.CoverKind != CoverFlags {
		return nil
	}
	bit := uint32(1) << uint(tc.FlagsBit)
	var othersSticky uint32
	for i, e := range tc.Expected {
		if i != tc.CoverOp {
			othersSticky |= e.Flags
		}
	}
	goldenFinal := othersSticky | tc.Expected[tc.CoverOp].Flags
	var corrupted uint32
	switch tc.Spec.C {
	case fault.C1:
		corrupted = othersSticky | (tc.Expected[tc.CoverOp].Flags | bit)
	case fault.C0:
		corrupted = othersSticky | (tc.Expected[tc.CoverOp].Flags &^ bit)
	}
	if corrupted&bit == goldenFinal&bit {
		return fmt.Errorf("status flag bit %d is already set by a prior instruction in the burst; corruption is masked", tc.FlagsBit)
	}
	return nil
}

// isOpRegister reports whether the DFF's D input is wired directly to a
// bit of the op input port.
func isOpRegister(m *module.Module, ff netlist.CellID) bool {
	p, ok := m.Netlist.FindInput(module.PortOp)
	if !ok {
		return false
	}
	d := m.Netlist.Cells[ff].In[0]
	for _, n := range p.Bits {
		if n == d {
			return true
		}
	}
	return false
}

// GoldenALUFlags exposes the comparison-flag golden model for emission.
func GoldenALUFlags(a, b uint32) (eq, lt, ltu bool) {
	f := alu.Flags(a, b)
	return f&1 != 0, f&2 != 0, f&4 != 0
}

// stickyFlags computes the expected final fflags value of a test burst.
func stickyFlags(tc *TestCase) uint32 {
	var v uint32
	for _, e := range tc.Expected {
		v |= e.Flags
	}
	return v
}

// fpuOpWritesInt reports whether the FPU op's result lands in an integer
// register (compares and classify) rather than an FP register.
func fpuOpWritesInt(op fpu.Op) bool {
	switch op {
	case fpu.OpFle, fpu.OpFlt, fpu.OpFeq, fpu.OpFclass:
		return true
	}
	return false
}

// CoverPointName renders what the test case observes, for reports.
func (tc *TestCase) CoverPointName() string {
	switch tc.CoverKind {
	case CoverResult:
		return "result"
	case CoverFlags:
		return fmt.Sprintf("flags[%d]", tc.FlagsBit)
	default:
		return "handshake"
	}
}
