package lift

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
)

func TestFuzzConstructALU(t *testing.T) {
	m, pairs := agedALUPairs(t)
	results := FuzzConstruct(m, pairs[0].Pair, pairs[0].Type, FuzzConfig{Seed: 1, Guided: true})
	if len(results) != 2 {
		t.Fatalf("got %d variants", len(results))
	}
	success := 0
	for _, r := range results {
		if r.Outcome == Success {
			success++
			tc := r.Case
			if len(tc.Ops) == 0 || !tc.Conditioned {
				t.Errorf("malformed fuzz case: %+v", tc)
			}
		}
	}
	if success == 0 {
		t.Fatal("guided fuzzing found no test case for the worst pair")
	}
}

func TestFuzzSuiteDetects(t *testing.T) {
	// Fuzz-constructed cases must detect their own injected faults, same
	// as formal ones.
	m, pairs := agedALUPairs(t)
	s := &Suite{Unit: m.Name}
	var specs []fault.Spec
	for i, p := range pairs {
		if i >= 2 {
			break
		}
		for _, r := range FuzzConstruct(m, p.Pair, p.Type, FuzzConfig{Seed: 3, Guided: true}) {
			if r.Outcome == Success {
				s.Cases = append(s.Cases, r.Case)
				specs = append(specs, r.Spec)
			}
		}
	}
	if len(s.Cases) == 0 {
		t.Fatal("no fuzz cases")
	}
	img := mustImage(t, s)

	// Clean on healthy hardware.
	c := cpu.New(memSize)
	c.ALU = cpu.NewNetlistALU(m, m.Netlist)
	c.Load(img)
	if halt := c.Run(50_000_000); halt != cpu.HaltExit || c.ExitCode != 0 {
		t.Fatalf("fuzz suite false positive: halt=%v", halt)
	}

	detected := 0
	for _, spec := range specs {
		failing := fault.FailingNetlist(m.Netlist, spec)
		c := cpu.New(memSize)
		c.ALU = cpu.NewNetlistALU(m, failing)
		c.Load(img)
		halt := c.Run(50_000_000)
		if halt == cpu.HaltBreak || halt == cpu.HaltStalled {
			detected++
		}
	}
	if detected == 0 {
		t.Fatalf("fuzz suite detected 0/%d faults", len(specs))
	}
	t.Logf("fuzz suite: %d cases, detected %d/%d injected faults", len(s.Cases), detected, len(specs))
}

func TestGuidedBeatsUnguidedOnBudget(t *testing.T) {
	// With a small attempt budget, the aging-analysis-guided fuzzer
	// should succeed at least as often as coin flips (§6.3's filtering
	// claim).
	m, pairs := agedALUPairs(t)
	budget := FuzzConfig{Attempts: 40, Seed: 5}
	guided, unguided := 0, 0
	for _, p := range pairs {
		g := budget
		g.Guided = true
		for _, r := range FuzzConstruct(m, p.Pair, p.Type, g) {
			if r.Outcome == Success {
				guided++
			}
		}
		for _, r := range FuzzConstruct(m, p.Pair, p.Type, budget) {
			if r.Outcome == Success {
				unguided++
			}
		}
	}
	t.Logf("small-budget fuzz successes: guided %d, unguided %d", guided, unguided)
	if guided < unguided {
		t.Errorf("guidance hurt: %d < %d", guided, unguided)
	}
	if guided == 0 {
		t.Error("guided fuzzing found nothing even on result-register faults")
	}
}

func TestLaunchOperandBit(t *testing.T) {
	m, pairs := agedALUPairs(t)
	// At least one violating pair should launch from an operand register.
	found := false
	for _, p := range pairs {
		if _, _, ok := launchOperandBit(m, p.Pair.Start); ok {
			found = true
		}
	}
	if !found {
		t.Error("no operand-register launch among violating pairs")
	}
}
