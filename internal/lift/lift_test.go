package lift

import (
	"math/rand"
	"testing"

	"repro/internal/aging"
	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/module"
	"repro/internal/sta"
)

const memSize = 1 << 20

func mustImage(t testing.TB, s *Suite) *isa.Image {
	t.Helper()
	img, err := s.Image()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// agedALUPairs runs the aging analysis once and returns the violating
// pairs of the ALU.
func agedALUPairs(t *testing.T) (*module.Module, []sta.PairSummary) {
	t.Helper()
	m := alu.Build()
	scale := sta.Calibrate(m.Netlist, cell.Lib28(), m.PeriodPs, m.SynthMargin)
	d := module.NewDriver(m)
	d.Sim.EnableSP()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		d.Exec(uint32(rng.Intn(alu.NumOps)), rng.Uint32(), rng.Uint32())
		d.Sim.SetInput(module.PortInValid, 0)
		d.Sim.Run(2)
	}
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	res := sta.Analyze(m.Netlist, sta.Config{
		PeriodPs: m.PeriodPs, Scale: scale, Aged: lib, Profile: d.Sim.Profile(),
	})
	if len(res.Pairs) == 0 {
		t.Fatal("no aging-prone pairs found in the ALU")
	}
	return m, res.Pairs
}

func TestConstructALUWorstPair(t *testing.T) {
	m, pairs := agedALUPairs(t)
	results := Construct(m, pairs[0].Pair, pairs[0].Type, Config{})
	if len(results) != 2 {
		t.Fatalf("got %d variants, want 2 (C=0, C=1)", len(results))
	}
	successes := 0
	for _, r := range results {
		t.Logf("%s -> %v (depth %d) %s", r.Spec.Name(m.Netlist), r.Outcome, r.Depth, r.Reason)
		switch r.Outcome {
		case Success:
			successes++
			tc := r.Case
			if len(tc.Ops) == 0 || len(tc.Expected) != len(tc.Ops) {
				t.Fatalf("malformed test case %+v", tc)
			}
			for _, op := range tc.Ops {
				if !alu.Op(op.Op).Valid() {
					t.Fatalf("test case uses invalid op %d", op.Op)
				}
			}
		case FormalTimeout:
			t.Errorf("unexpected formal timeout on a small module")
		}
	}
	if successes == 0 {
		t.Fatal("no variant produced a test case for the worst pair")
	}
}

func TestMitigationDoublesVariants(t *testing.T) {
	m, pairs := agedALUPairs(t)
	results := Construct(m, pairs[0].Pair, pairs[0].Type, Config{Mitigation: true})
	if len(results) != 4 {
		t.Fatalf("got %d variants with mitigation, want 4", len(results))
	}
	edges := map[fault.EdgeFilter]bool{}
	for _, r := range results {
		edges[r.Spec.Edge] = true
	}
	if !edges[fault.RisingEdge] || !edges[fault.FallingEdge] {
		t.Error("mitigation must produce rising and falling variants")
	}
}

// buildALUSuite constructs a suite over the first few pairs.
func buildALUSuite(t *testing.T, m *module.Module, pairs []sta.PairSummary, mitigation bool) (*Suite, []Result) {
	t.Helper()
	s := &Suite{Unit: m.Name}
	var all []Result
	for i, p := range pairs {
		if i >= 3 {
			break
		}
		for _, r := range Construct(m, p.Pair, p.Type, Config{Mitigation: mitigation}) {
			all = append(all, r)
			if r.Outcome == Success {
				s.Cases = append(s.Cases, r.Case)
			}
		}
	}
	if len(s.Cases) == 0 {
		t.Fatal("no test cases constructed")
	}
	return s, all
}

func TestSuitePassesOnHealthyCPU(t *testing.T) {
	m, pairs := agedALUPairs(t)
	suite, _ := buildALUSuite(t, m, pairs, false)
	img := mustImage(t, suite)

	// Behavioural CPU.
	c := cpu.New(memSize)
	c.Load(img)
	if got := c.Run(10_000_000); got != cpu.HaltExit || c.ExitCode != 0 {
		t.Fatalf("behavioural run: halt=%v exit=%d s1=%d", got, c.ExitCode, c.X[caseReg])
	}

	// Netlist-backed healthy CPU.
	c2 := cpu.New(memSize)
	c2.ALU = cpu.NewNetlistALU(m, m.Netlist)
	c2.Load(img)
	if got := c2.Run(50_000_000); got != cpu.HaltExit || c2.ExitCode != 0 {
		t.Fatalf("netlist run: halt=%v exit=%d case=%d", got, c2.ExitCode, c2.X[caseReg])
	}
	insts, err := suite.InstCount()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("suite: %d cases, %d instructions, %d cycles",
		len(suite.Cases), insts, c.Cycles)
}

func TestSuiteDetectsInjectedFaults(t *testing.T) {
	// The end-to-end Vega loop: for every successful construction,
	// inject the corresponding failing netlist and check that the full
	// suite detects it (by trap or stall).
	m, pairs := agedALUPairs(t)
	suite, results := buildALUSuite(t, m, pairs, false)
	img := mustImage(t, suite)
	detected, total := 0, 0
	for _, r := range results {
		if r.Outcome != Success {
			continue
		}
		total++
		failing := fault.FailingNetlist(m.Netlist, r.Spec)
		c := cpu.New(memSize)
		c.ALU = cpu.NewNetlistALU(m, failing)
		c.Load(img)
		halt := c.Run(50_000_000)
		if halt == cpu.HaltBreak || halt == cpu.HaltStalled {
			detected++
		} else {
			t.Logf("fault %s escaped (halt=%v exit=%d)", r.Spec.Name(m.Netlist), halt, c.ExitCode)
		}
	}
	if total == 0 {
		t.Fatal("no successful constructions")
	}
	if detected == 0 {
		t.Fatalf("suite detected 0/%d injected faults", total)
	}
	t.Logf("suite detected %d/%d injected faults", detected, total)
}

func TestRandomSuiteCleanOnHealthy(t *testing.T) {
	m := alu.Build()
	s := RandomSuite(m, 10, 99)
	img := mustImage(t, s)
	c := cpu.New(memSize)
	c.ALU = cpu.NewNetlistALU(m, m.Netlist)
	c.Load(img)
	if got := c.Run(50_000_000); got != cpu.HaltExit || c.ExitCode != 0 {
		t.Fatalf("random suite false-positive: halt=%v case=%d", got, c.X[caseReg])
	}
}

func TestRandomSuiteFPUCleanOnHealthy(t *testing.T) {
	m := fpu.Build()
	s := RandomSuite(m, 6, 100)
	img := mustImage(t, s)
	c := cpu.New(memSize)
	c.FPU = cpu.NewNetlistFPU(m, m.Netlist)
	c.Load(img)
	if got := c.Run(50_000_000); got != cpu.HaltExit || c.ExitCode != 0 {
		t.Fatalf("random FPU suite false-positive: halt=%v case=%d exit=%d", got, c.X[caseReg], c.ExitCode)
	}
}

func TestClassifyCover(t *testing.T) {
	if k, _, _ := classifyCover("result[31]"); k != CoverResult {
		t.Error("result misclassified")
	}
	if k, bit, _ := classifyCover("flags[3]"); k != CoverFlags || bit != 3 {
		t.Error("flags misclassified")
	}
	if k, _, _ := classifyCover("out_valid[0]"); k != CoverHandshake {
		t.Error("out_valid misclassified")
	}
	if k, _, _ := classifyCover("busy[0]"); k != CoverHandshake {
		t.Error("busy misclassified")
	}
}

func TestFPUStickyMaskFC(t *testing.T) {
	m := fpu.Build()
	mk := func(c fault.CValue, coverFlags, otherFlags uint32) *TestCase {
		return &TestCase{
			Unit:      "FPU",
			Spec:      fault.Spec{C: c},
			Ops:       []OpStim{{Op: uint32(fpu.OpFadd)}, {Op: uint32(fpu.OpFmul)}},
			Expected:  []OpExpect{{Flags: otherFlags}, {Flags: coverFlags}},
			CoverOp:   1,
			CoverKind: CoverFlags,
			FlagsBit:  0, // NX
		}
	}
	// C=1 with another op already raising NX: masked -> FC.
	if err := checkFPUConvertible(m, mk(fault.C1, 0, uint32(fpu.FlagNX))); err == nil {
		t.Error("masked C=1 flag corruption must be FC")
	}
	// C=1 with a clean burst: convertible.
	if err := checkFPUConvertible(m, mk(fault.C1, 0, 0)); err != nil {
		t.Errorf("unmasked C=1 flag corruption must convert: %v", err)
	}
	// C=0 clearing a flag only the cover op sets: convertible.
	if err := checkFPUConvertible(m, mk(fault.C0, uint32(fpu.FlagNX), 0)); err != nil {
		t.Errorf("C=0 on a uniquely-set flag must convert: %v", err)
	}
	// C=0 but another op also sets the bit: masked -> FC.
	if err := checkFPUConvertible(m, mk(fault.C0, uint32(fpu.FlagNX), uint32(fpu.FlagNX))); err == nil {
		t.Error("masked C=0 flag corruption must be FC")
	}
}

func TestSuiteEmitIntoSharedAsm(t *testing.T) {
	m, pairs := agedALUPairs(t)
	suite, _ := buildALUSuite(t, m, pairs, false)
	a := isa.NewAsm()
	suite.EmitInto(a, "app_fail")
	a.Label("app_fail")
	a.Ebreak()
	img, err := a.Assemble()
	if err != nil {
		t.Fatalf("embedding assembly failed: %v", err)
	}
	if len(img.Insts) == 0 {
		t.Fatal("nothing emitted")
	}
}
