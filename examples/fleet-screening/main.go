// fleet-screening simulates the data-center screening problem that
// motivates the paper: a fleet of nominally identical CPUs has been in
// service for different lengths of time, a few have crossed into
// aging-induced timing failure, and the operator wants to find them
// without a 45-minute diagnostic window per machine.
//
// The example ages each machine with the reaction-diffusion model (the
// machines that exceed their timing slack get a failing netlist with a
// randomly chosen failure mode), then screens the fleet twice: with the
// Vega-generated suite and with a size-matched random suite. It prints a
// per-machine table and the screening accuracy of both approaches.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/lift"
	"repro/internal/report"
)

type machine struct {
	id       int
	years    float64
	degraded bool       // did aging exceed the slack margin?
	spec     fault.Spec // the failure it develops (if degraded)
}

func main() {
	fmt.Println("== building the Vega suite for the ALU ==")
	w := core.NewALU(core.Config{Lift: lift.Config{Mitigation: true}})
	if _, err := w.ErrorLifting(); err != nil {
		log.Fatal(err)
	}
	suite := w.Suite()
	random := lift.RandomSuite(w.Module, len(suite.Cases), 4242)
	fmt.Printf("Vega suite: %d cases; random baseline: %d cases\n\n", len(suite.Cases), len(random.Cases))

	// The aging threshold: the workflow's STA says the worst pair fails
	// at 10 years. Model per-machine onset as the lifetime at which the
	// worst path's slack goes negative, jittered per die (process
	// variation).
	pairs := w.STA.Pairs
	rng := rand.New(rand.NewSource(99))
	const fleetSize = 12
	fleet := make([]machine, fleetSize)
	for i := range fleet {
		m := &fleet[i]
		m.id = i
		m.years = float64(rng.Intn(12)) + rng.Float64()
		onset := 6.5 + rng.Float64()*3 // die-to-die variation of failure onset
		m.degraded = m.years >= onset
		if m.degraded {
			p := pairs[rng.Intn(len(pairs))]
			m.spec = fault.Spec{
				Type:  p.Type,
				Start: p.Pair.Start,
				End:   p.Pair.End,
				C:     []fault.CValue{fault.C0, fault.C1, fault.CRandom}[rng.Intn(3)],
			}
		}
	}

	screen := func(s *lift.Suite, m machine) bool {
		img, err := s.Image()
		if err != nil {
			log.Fatal(err)
		}
		c := cpu.New(core.MemSize)
		if m.degraded {
			c.ALU = cpu.NewNetlistALU(w.Module, fault.FailingNetlist(w.Module.Netlist, m.spec))
		} else {
			c.ALU = cpu.NewNetlistALU(w.Module, w.Module.Netlist)
		}
		c.Load(img)
		halt := c.Run(core.MaxCycles)
		return halt == cpu.HaltBreak || halt == cpu.HaltStalled || halt == cpu.HaltFault
	}

	var rows [][]string
	vegaOK, randOK := 0, 0
	for _, m := range fleet {
		vega := screen(suite, m)
		rnd := screen(random, m)
		state := "healthy"
		if m.degraded {
			state = fmt.Sprintf("FAILING (%s, C=%s)", m.spec.Type, m.spec.C)
		}
		if vega == m.degraded {
			vegaOK++
		}
		if rnd == m.degraded {
			randOK++
		}
		rows = append(rows, []string{
			fmt.Sprintf("node-%02d", m.id),
			fmt.Sprintf("%.1f", m.years),
			state,
			verdict(vega, m.degraded),
			verdict(rnd, m.degraded),
		})
	}
	fmt.Print(report.Table(
		[]string{"Machine", "Age (y)", "True state", "Vega screen", "Random screen"}, rows))
	fmt.Printf("\nscreening accuracy: Vega %d/%d, random %d/%d\n",
		vegaOK, fleetSize, randOK, fleetSize)
	suiteInsts, err := suite.InstCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one Vega screening pass is %d instructions (~%s); schedule it every second, not every quarter.\n",
		suiteInsts, "hundreds of cycles")
}

func verdict(flagged, degraded bool) string {
	switch {
	case flagged && degraded:
		return "caught"
	case !flagged && !degraded:
		return "clean"
	case flagged && !degraded:
		return "FALSE ALARM"
	default:
		return "ESCAPED"
	}
}
