// fleet-screening simulates the data-center screening problem that
// motivates the paper — a fleet of nominally identical CPUs, a few aged
// into timing failure, an operator who needs to find them fast — and
// runs it the way a real fleet would: against a fleetd screening daemon
// (client and server in one process here, HTTP in between).
//
// The example brings up an in-process vega-fleetd, then:
//
//  1. submits a lift job and downloads the Vega test suite;
//  2. submits a lifetime-sweep job for the ALU netlist to locate the
//     fleet's failure-onset window;
//  3. screens every machine locally with the downloaded suite against a
//     size-matched random baseline;
//  4. resubmits the same sweep and shows it riding the daemon's
//     content-addressed cache (warm submission, no recompile), with the
//     /metrics counters as evidence.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/lift"
	"repro/internal/report"
)

type machine struct {
	id       int
	years    float64
	degraded bool       // did aging exceed the slack margin?
	spec     fault.Spec // the failure it develops (if degraded)
}

func main() {
	// An in-process fleetd: same daemon, same HTTP surface as the
	// standalone binary, listening on a loopback test listener.
	dir, err := os.MkdirTemp("", "fleet-screening-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := fleet.New(fleet.Options{Dir: dir, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown(context.Background())
	c := &fleet.Client{Base: hs.URL}
	ctx := context.Background()
	fmt.Printf("== fleetd up on %s ==\n", hs.URL)

	// 1. The suite comes from the daemon, not a local workflow: submit
	// a lift job, wait, download the result.
	fmt.Println("== submitting ALU lift job ==")
	liftJob, err := c.Submit(ctx, fleet.Spec{Kind: fleet.KindLift, Unit: "ALU", Mitigation: true})
	if err != nil {
		log.Fatal(err)
	}
	liftDone := waitDone(ctx, c, liftJob.ID)
	suiteBytes, err := c.Result(ctx, liftJob.ID)
	if err != nil {
		log.Fatal(err)
	}
	var suite lift.Suite
	if err := json.Unmarshal(suiteBytes, &suite); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s done in %.0fms: %d test cases\n", liftJob.ID, liftDone.ServiceMs, len(suite.Cases))

	// The screening harness still needs the module and its aged pairs;
	// build the local workflow for the simulator side of the story (the
	// daemon's cached workflow produced the suite we just downloaded).
	w := core.NewALU(core.Config{Lift: lift.Config{Mitigation: true}})
	if _, err := w.ErrorLifting(); err != nil {
		log.Fatal(err)
	}
	random := lift.RandomSuite(w.Module, len(suite.Cases), 4242)

	// 2. Ask the daemon when this design starts failing: a sweep job
	// over the ALU netlist source — the same submission a fleet
	// operator would make for any netlist, no special-casing.
	fmt.Println("\n== submitting lifetime-sweep job for the ALU netlist ==")
	// A 2% period margin over the fresh critical delay: tight enough
	// that aging eats through it mid-life, so the sweep shows the
	// fleet's failure-onset window instead of uniform green.
	sweepSpec := fleet.Spec{
		Kind:      fleet.KindSweep,
		Verilog:   w.Module.Netlist.Verilog(),
		Margin:    1.02,
		YearsGrid: []float64{0, 2, 4, 6, 8, 10},
	}
	sweepJob, err := c.Submit(ctx, sweepSpec)
	if err != nil {
		log.Fatal(err)
	}
	sweepDone := waitDone(ctx, c, sweepJob.ID)
	sweepBytes, err := c.Result(ctx, sweepJob.ID)
	if err != nil {
		log.Fatal(err)
	}
	var sweep fleet.SweepResult
	if err := json.Unmarshal(sweepBytes, &sweep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s done in %.0fms (cold compile: cache_hit=%v)\n",
		sweepJob.ID, sweepDone.ServiceMs, sweepJob.CacheHit)
	for _, p := range sweep.Points {
		fmt.Printf("  %4.1fy  WNS setup %+8.1fps  (%d violating paths)\n",
			p.Years, p.WNSSetup, p.SetupViolations)
	}

	// 3. Screen the fleet locally with the downloaded suite.
	pairs := w.STA.Pairs
	rng := rand.New(rand.NewSource(99))
	const fleetSize = 12
	machines := make([]machine, fleetSize)
	for i := range machines {
		m := &machines[i]
		m.id = i
		m.years = float64(rng.Intn(12)) + rng.Float64()
		onset := 6.5 + rng.Float64()*3 // die-to-die variation of failure onset
		m.degraded = m.years >= onset
		if m.degraded {
			p := pairs[rng.Intn(len(pairs))]
			m.spec = fault.Spec{
				Type:  p.Type,
				Start: p.Pair.Start,
				End:   p.Pair.End,
				C:     []fault.CValue{fault.C0, fault.C1, fault.CRandom}[rng.Intn(3)],
			}
		}
	}

	screen := func(s *lift.Suite, m machine) bool {
		img, err := s.Image()
		if err != nil {
			log.Fatal(err)
		}
		c := cpu.New(core.MemSize)
		if m.degraded {
			c.ALU = cpu.NewNetlistALU(w.Module, fault.FailingNetlist(w.Module.Netlist, m.spec))
		} else {
			c.ALU = cpu.NewNetlistALU(w.Module, w.Module.Netlist)
		}
		c.Load(img)
		halt := c.Run(core.MaxCycles)
		return halt == cpu.HaltBreak || halt == cpu.HaltStalled || halt == cpu.HaltFault
	}

	fmt.Println("\n== screening the fleet with the downloaded suite ==")
	var rows [][]string
	vegaOK, randOK := 0, 0
	for _, m := range machines {
		vega := screen(&suite, m)
		rnd := screen(random, m)
		state := "healthy"
		if m.degraded {
			state = fmt.Sprintf("FAILING (%s, C=%s)", m.spec.Type, m.spec.C)
		}
		if vega == m.degraded {
			vegaOK++
		}
		if rnd == m.degraded {
			randOK++
		}
		rows = append(rows, []string{
			fmt.Sprintf("node-%02d", m.id),
			fmt.Sprintf("%.1f", m.years),
			state,
			verdict(vega, m.degraded),
			verdict(rnd, m.degraded),
		})
	}
	fmt.Print(report.Table(
		[]string{"Machine", "Age (y)", "True state", "Vega screen", "Random screen"}, rows))
	fmt.Printf("\nscreening accuracy: Vega %d/%d, random %d/%d\n",
		vegaOK, fleetSize, randOK, fleetSize)

	// 4. A second operator submits the same netlist: the daemon serves
	// it from the shared content-addressed store — no parse, no
	// characterization, just the analysis pass.
	fmt.Println("\n== resubmitting the same sweep (another operator, same netlist) ==")
	again, err := c.Submit(ctx, sweepSpec)
	if err != nil {
		log.Fatal(err)
	}
	againDone := waitDone(ctx, c, again.ID)
	fmt.Printf("job %s done in %.0fms (warm: cache_hit=%v)\n",
		again.ID, againDone.ServiceMs, again.CacheHit)
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d builds, %d hits, %d coalesced (len %d); jobs: %v\n",
		m.Store.Builds, m.Store.Hits, m.Store.Coalesced, m.Store.Len, m.Jobs)
}

// waitDone polls the daemon until the job completes.
func waitDone(ctx context.Context, c *fleet.Client, id string) *fleet.Job {
	j, err := c.Wait(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	if j.Status != fleet.StatusDone {
		log.Fatalf("job %s finished %s: %s", id, j.Status, j.Error)
	}
	return j
}

func verdict(flagged, degraded bool) string {
	switch {
	case flagged && degraded:
		return "caught"
	case !flagged && !degraded:
		return "clean"
	case flagged && !degraded:
		return "FALSE ALARM"
	default:
		return "ESCAPED"
	}
}
