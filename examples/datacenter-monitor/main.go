// datacenter-monitor shows the deployment scenario from the paper's
// introduction: a long-running service continuously runs the Vega aging
// library between requests, so an aging-related SDC is caught within one
// test period instead of at the next quarterly fleet scan.
//
// The example generates the ALU test suite with the full three-phase
// workflow, embeds it into a toy key-value-checksum service, runs the
// service on healthy silicon (it completes cleanly), then re-runs it on
// emulated 10-year-old silicon (a failing netlist) and reports the test
// case that caught the corruption. It also emits the standalone C aging
// library for integration into non-simulated software.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/integrate"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/profile"
)

// buildService assembles the "service": batches of requests are hashed
// into a digest, with a per-batch maintenance block — the natural
// routinely-but-not-hotly executed integration site — and a final
// self-check of the digest.
func buildService() (*isa.Image, uint32) {
	const batches = 64
	const perBatch = 64
	const rounds = 8
	// Go-side reference of the same loop nest.
	var digest uint32 = 0x9e3779b9
	x := uint32(0x1234)
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			x = x*1664525 + 1013904223
			v := x
			for r := 0; r < rounds; r++ {
				v = (v<<5 | v>>27) ^ (v >> 3)
			}
			digest = (digest<<1 | digest>>31) ^ v
		}
		digest += uint32(b) // per-batch maintenance
	}

	a := isa.NewAsm()
	a.Li(isa.S0, 0x9e3779b9) // digest
	a.Li(isa.S2, 0x1234)     // request source
	a.Li(isa.S3, 0)          // batch
	a.Label("batch")
	a.Li(isa.S4, 0) // request within batch
	a.Label("serve")
	a.Li(isa.T0, 1664525)
	a.Mul(isa.S2, isa.S2, isa.T0)
	a.Li(isa.T0, 1013904223)
	a.Add(isa.S2, isa.S2, isa.T0)
	a.Mv(isa.S5, isa.S2) // v
	a.Li(isa.S6, rounds)
	a.Label("round")
	a.Slli(isa.T1, isa.S5, 5)
	a.Srli(isa.T2, isa.S5, 27)
	a.Or(isa.T1, isa.T1, isa.T2)
	a.Srli(isa.T2, isa.S5, 3)
	a.Xor(isa.S5, isa.T1, isa.T2)
	a.Addi(isa.S6, isa.S6, -1)
	a.Bnez(isa.S6, "round")
	a.Slli(isa.T1, isa.S0, 1)
	a.Srli(isa.T2, isa.S0, 31)
	a.Or(isa.S0, isa.T1, isa.T2)
	a.Xor(isa.S0, isa.S0, isa.S5)
	a.Addi(isa.S4, isa.S4, 1)
	a.Li(isa.T3, perBatch)
	a.Bne(isa.S4, isa.T3, "serve")
	// Per-batch maintenance block: the integration site.
	a.Add(isa.S0, isa.S0, isa.S3)
	a.Addi(isa.S3, isa.S3, 1)
	a.Li(isa.T3, batches)
	a.Bne(isa.S3, isa.T3, "batch")
	a.Mv(isa.A0, isa.S0)
	// Self-check.
	a.Li(isa.T0, digest)
	a.Beq(isa.A0, isa.T0, "ok")
	a.Li(isa.A0, 2) // wrong digest: silent corruption slipped through!
	a.Ecall()
	a.Label("ok")
	a.Li(isa.A0, 0)
	a.Ecall()
	img, err := a.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	return img, digest
}

func main() {
	fmt.Println("== generating the ALU aging test suite (three-phase workflow) ==")
	w := core.NewALU(core.Config{Lift: lift.Config{Mitigation: true}})
	if _, err := w.ErrorLifting(); err != nil {
		log.Fatal(err)
	}
	suite := w.Suite()
	cycles, err := core.SuiteCycles(suite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d test cases, %d cycles per pass — cheap enough to run per request batch\n\n",
		len(suite.Cases), cycles)

	service, digest := buildService()
	fmt.Printf("service self-check digest: %#x\n", digest)

	fmt.Println("\n== integrating the suite into the service (budget 1%) ==")
	o, err := integrate.MeasureOverhead("kv-service", service, suite, 0.01, core.MemSize, core.MaxCycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integration site: block @%#x (visited %d times), throttle period %d\n",
		o.Site.Block.Start, o.Site.Block.Count, o.Site.Period)
	fmt.Printf("measured overhead on healthy silicon: %.3f%% (%d -> %d cycles), service exits clean\n",
		o.Fraction*100, o.BaselineCycles, o.TestedCycles)

	// Re-embed (the instrumented image) and run on aged silicon.
	prof := profile.Collect(service, core.MemSize, core.MaxCycles)
	if prof == nil {
		log.Fatal("service failed during profiling")
	}
	suiteInsts, err := suite.InstCount()
	if err != nil {
		log.Fatal(err)
	}
	site, err := integrate.ChooseSite(prof, suiteInsts, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	emb, err := integrate.Embed(service, suite, site)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== the fleet ages: injecting a 10-year aging failure into the ALU ==")
	// A subtle failure mode: the endpoint driving the highest result bit,
	// stuck at 0 on activation. Small loop counters never notice; wide
	// arithmetic silently loses its top bit.
	pair := suite.Cases[0].Spec
	out, _ := w.Module.Netlist.FindOutput("result")
	for _, tc := range suite.Cases {
		if w.Module.Netlist.Cells[tc.Spec.End].Out == out.Bits[31] {
			pair = tc.Spec
			break
		}
	}
	failing := fault.FailingNetlist(w.Module.Netlist, fault.Spec{
		Type: pair.Type, Start: pair.Start, End: pair.End, C: fault.C0,
	})
	c := cpu.New(core.MemSize)
	c.ALU = cpu.NewNetlistALU(w.Module, failing)
	c.Load(emb.Image)
	// Watchdog budget: a handful of healthy runtimes. Corrupted loop
	// counters can livelock the service, which the budget converts into
	// a watchdog-visible symptom.
	switch c.Run(5 * o.BaselineCycles) {
	case cpu.HaltBreak:
		idx := lift.FailedCase(c.X[isa.S1])
		fmt.Printf("DETECTED at runtime by test case %d (%s) after %d cycles —\n",
			idx, suite.Cases[idx].Name, c.Cycles)
		fmt.Println("the service can now fail over before the corruption reaches user data.")
	case cpu.HaltStalled, cpu.HaltFault:
		fmt.Println("DETECTED: the faulty unit hung the pipeline (watchdog-visible).")
	case cpu.HaltLimit:
		fmt.Println("DETECTED: the service livelocked on the faulty ALU (watchdog-visible).")
	case cpu.HaltExit:
		if c.ExitCode == 2 {
			fmt.Println("MISSED: the digest was silently corrupted — this is what an SDC looks like.")
		} else {
			fmt.Println("fault did not activate during this run.")
		}
	}

	fmt.Println("\n== emitting the standalone aging library (§3.4.1) ==")
	src := integrate.GenerateC([]*lift.Suite{suite})
	fmt.Printf("generated vega_aging.c: %d lines, %d test functions, scheduling helpers:\n",
		strings.Count(src, "\n"), strings.Count(src, "int vega_test_"))
	for _, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "int vega_run") || strings.Contains(line, "void vega_set_handler") {
			fmt.Println("  " + line)
		}
	}
}
