// The quickstart walks the paper's Section 3 running example end to end
// on the 2-bit pipelined adder of Listing 1 / Figure 3:
//
//  1. simulate a workload and collect the signal-probability profile
//     (the shape of the paper's Table 1),
//  2. run aging-aware STA and find the setup-violating path
//     $4 -> $7 -> $8 -> $10 (§3.2.2's 0.946ns example),
//  3. instrument the failure model with a shadow replica (Figure 7) and
//     let the bounded model checker produce the activating trace (the
//     paper's Table 2),
//  4. replay the trace to watch o[1] and o_s[1] diverge.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/aging"
	"repro/internal/bmc"
	"repro/internal/cell"
	"repro/internal/demo"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sta"
)

func main() {
	nl := demo.Adder2()
	fmt.Printf("netlist %q: %d cells (%d DFFs)\n\n", nl.Name, len(nl.Cells), nl.CountKind(cell.DFF))

	// --- Phase 1a: signal-probability simulation (§3.2.1) ---
	s := sim.New(nl)
	s.EnableSP()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		// A biased workload: a leans high, b leans low, so some cells
		// idle and age asymmetrically.
		a := uint64(rng.Intn(4) | rng.Intn(4))
		b := uint64(rng.Intn(4) & rng.Intn(4))
		s.SetInput("a", a)
		s.SetInput("b", b)
		s.Step()
	}
	prof := s.Profile()
	fmt.Println("SP profile (cf. the paper's Table 1):")
	for i, c := range nl.Cells {
		fmt.Printf("  %-8s SP=%.2f", c.Name, prof.SP[c.Out])
		if i%3 == 2 {
			fmt.Println()
		}
	}
	fmt.Println()

	// --- Phase 1b: aging-aware STA (§3.2.2) ---
	lib := aging.NewLibrary(cell.DemoLibrary(), aging.Default(), 10)
	fresh := sta.Analyze(nl, sta.Config{PeriodPs: 1000, Base: cell.DemoLibrary()})
	aged := sta.Analyze(nl, sta.Config{PeriodPs: 1000, Aged: lib, Profile: prof})
	fmt.Printf("\nfresh WNS: setup %+.0fps hold %+.0fps (design meets timing at 1 GHz)\n",
		fresh.WNSSetup, fresh.WNSHold)
	fmt.Printf("after 10 years: setup WNS %+.1fps, %d violating path(s)\n",
		aged.WNSSetup, aged.NumSetupViolations)
	if len(aged.Pairs) == 0 {
		log.Fatal("no aging-prone paths found; try a more biased workload")
	}
	worst := aged.Pairs[0]
	fmt.Printf("worst pair: %s -> %s (slack %.1fps)\n\n",
		nl.Cells[worst.Start].Name, nl.Cells[worst.End].Name, worst.WorstSlack)

	// --- Phase 2: failure model + shadow replica + BMC (§3.3) ---
	spec := fault.Spec{
		Type:  sta.Setup,
		Start: worst.Start,
		End:   worst.End,
		C:     fault.C1,
	}
	inst := fault.ShadowReplica(nl, spec)
	fmt.Printf("instrumented %q: %d cells cloned into the shadow replica, cover points: ",
		spec.Name(nl), inst.ConeCells)
	for _, cp := range inst.Covers {
		fmt.Printf("%s ", cp.Name)
	}
	fmt.Println()

	res := bmc.Cover(inst.Netlist, inst.Covers, bmc.Config{})
	if res.Verdict != bmc.Covered {
		log.Fatalf("BMC verdict: %v", res.Verdict)
	}
	fmt.Printf("BMC found a trace at depth %d covering %s at cycle %d (cf. the paper's Table 2):\n",
		res.Depth, res.Trace.CoverPoint.Name, res.Trace.CoverCycle+1)
	fmt.Printf("  cycle:")
	for t := 0; t < res.Trace.Cycles; t++ {
		fmt.Printf("  %4d", t+1)
	}
	fmt.Println()
	for _, port := range []string{"a", "b"} {
		fmt.Printf("  %-5s:", port)
		for _, v := range res.Trace.Inputs[port] {
			fmt.Printf("  'b%02b", v)
		}
		fmt.Println()
	}

	// --- Replay: watch the original and shadow outputs diverge ---
	rs := sim.New(inst.Netlist)
	fmt.Printf("  o[1] :")
	vals := make([]bool, 0, res.Trace.Cycles)
	shadows := make([]bool, 0, res.Trace.Cycles)
	for t := 0; t < res.Trace.Cycles; t++ {
		rs.SetInput("a", res.Trace.Inputs["a"][t])
		rs.SetInput("b", res.Trace.Inputs["b"][t])
		vals = append(vals, rs.Net(res.Trace.CoverPoint.Orig))
		shadows = append(shadows, rs.Net(res.Trace.CoverPoint.Shadow))
		rs.Step()
	}
	for _, v := range vals {
		fmt.Printf("   'b%b", b2i(v))
	}
	fmt.Println()
	fmt.Printf("  o_s  :")
	for _, v := range shadows {
		fmt.Printf("   'b%b", b2i(v))
	}
	fmt.Println("\n\nthe shadow (faulty) machine diverges exactly where the model checker promised.")
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
