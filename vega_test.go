package vega_test

import (
	"testing"

	vega "repro"
	"repro/internal/core"
	"repro/internal/lift"
)

// TestALUWorkflowEndToEnd exercises the full public-API pipeline on the
// ALU: workload profiling, aging analysis, error lifting, suite
// assembly, and validation against emulated aged silicon.
func TestALUWorkflowEndToEnd(t *testing.T) {
	w := vega.NewALU(vega.Config{})
	res, err := w.AgingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if res.WNSSetup >= 0 || res.NumSetupViolations == 0 {
		t.Fatalf("expected aged setup violations, got WNS %.1f", res.WNSSetup)
	}
	if res.NumHoldViolations != 0 {
		t.Error("the ALU should have no hold violations")
	}
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	suite := w.Suite()
	if len(suite.Cases) == 0 {
		t.Fatal("no test cases constructed")
	}
	cycles, err := vega.SuiteCycles(suite)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || cycles > 5000 {
		t.Errorf("suite cycles = %d, expected a compact suite", cycles)
	}
	qrows, err := w.TestQuality(suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qrows {
		if q.Pct(q.Detected) < 75 {
			t.Errorf("FM=%v detection %.1f%%, expected most faults caught", q.FM, q.Pct(q.Detected))
		}
	}
}

// TestFPUWorkflowEndToEnd is the FPU variant; it is the expensive path
// (gate-level FPU everywhere), so it is skipped in -short runs.
func TestFPUWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("FPU end-to-end is expensive")
	}
	w := vega.NewFPU(vega.Config{})
	res, err := w.AgingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSetupViolations < 100 {
		t.Errorf("FPU should have many aged setup violations, got %d", res.NumSetupViolations)
	}
	if res.NumHoldViolations == 0 {
		t.Error("FPU should have aged hold violations (clock-tree skew)")
	}
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	suite := w.Suite()
	if len(suite.Cases) < 10 {
		t.Fatalf("FPU suite suspiciously small: %d cases", len(suite.Cases))
	}
	rows, err := w.TestQuality(suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range rows {
		if q.Pct(q.Detected) < 80 {
			t.Errorf("FM=%v detection %.1f%%", q.FM, q.Pct(q.Detected))
		}
	}
}

// TestMitigationImprovesRobustness checks the §3.3.4 story: the
// edge-filtered variants at least match plain construction on fixed-C
// failure modes.
func TestMitigationImprovesRobustness(t *testing.T) {
	plain := vega.NewALU(vega.Config{})
	if _, err := plain.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	mit := vega.NewALU(vega.Config{Lift: vega.LiftConfig{Mitigation: true}})
	if _, err := mit.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	sPlain, sMit := plain.Suite(), mit.Suite()
	if len(sMit.Cases) <= len(sPlain.Cases) {
		t.Errorf("mitigation should generate more cases: %d vs %d",
			len(sMit.Cases), len(sPlain.Cases))
	}
	qPlain, err := plain.TestQuality(sPlain)
	if err != nil {
		t.Fatal(err)
	}
	qMit, err := mit.TestQuality(sMit)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qPlain {
		if qMit[i].Pct(qMit[i].Detected) < qPlain[i].Pct(qPlain[i].Detected) {
			t.Errorf("FM=%v: mitigation regressed detection (%.1f%% -> %.1f%%)",
				qPlain[i].FM, qPlain[i].Pct(qPlain[i].Detected), qMit[i].Pct(qMit[i].Detected))
		}
	}
}

// TestTable4Tally sanity-checks the outcome aggregation.
func TestTable4Tally(t *testing.T) {
	w := vega.NewALU(vega.Config{})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	row := core.Table4("ALU", false, w.Results)
	if row.S+row.UR+row.FF+row.FC != row.Total {
		t.Errorf("tally does not sum: %+v", row)
	}
	if row.Total != len(w.STA.Pairs) {
		t.Errorf("pair count mismatch: %d vs %d", row.Total, len(w.STA.Pairs))
	}
}

// TestMergedSuite checks cross-unit suite merging used by Figure 9.
func TestMergedSuite(t *testing.T) {
	w := vega.NewALU(vega.Config{})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	s1 := w.Suite()
	s2 := lift.RandomSuite(w.Module, 3, 5)
	merged := vega.MergeSuites(s1, s2)
	if len(merged.Cases) != len(s1.Cases)+3 {
		t.Errorf("merge lost cases")
	}
	if _, err := vega.SuiteCycles(merged); err != nil {
		t.Errorf("merged suite does not run: %v", err)
	}
}
