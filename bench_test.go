// bench_test.go holds one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its artifact end to
// end and reports headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The printed rows/series are the
// reproduction record kept in EXPERIMENTS.md.
package vega_test

import (
	"fmt"
	"math/rand"
	"testing"

	vega "repro"
	"repro/internal/aging"
	"repro/internal/bmc"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/lift"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

// fastCfg profiles a representative subset of workloads so the full
// evaluation fits in a benchmark run; the cmd/ binaries run everything.
func fastCfg(mitigation bool) vega.Config {
	return vega.Config{
		Workloads: []string{"crc32", "minver", "matmult-int", "st", "statemate"},
		Lift:      vega.LiftConfig{Mitigation: mitigation},
	}
}

// BenchmarkTable1_SPProfile regenerates the Section 3 SP profile: signal
// probability simulation of the demo adder under a biased workload.
func BenchmarkTable1_SPProfile(b *testing.B) {
	nl := demo.Adder2()
	for i := 0; i < b.N; i++ {
		s := sim.New(nl)
		s.EnableSP()
		for c := 0; c < 10000; c++ {
			s.SetInput("a", uint64(c*7%4))
			s.SetInput("b", uint64(c*c%3))
			s.Step()
		}
		prof := s.Profile()
		b.ReportMetric(prof.SP[nl.Cells[demo.CellIDByName(nl, "XOR$7")].Out], "XOR$7-SP")
	}
}

// BenchmarkTable2_TraceGeneration regenerates the Table 2 trace: failure
// model instrumentation + BMC on the demo adder.
func BenchmarkTable2_TraceGeneration(b *testing.B) {
	nl := demo.Adder2()
	spec := fault.Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(nl, "DFF$4"),
		End:   demo.CellIDByName(nl, "DFF$10"),
		C:     fault.C1,
	}
	for i := 0; i < b.N; i++ {
		inst := fault.ShadowReplica(nl, spec)
		res := bmc.Cover(inst.Netlist, inst.Covers, bmc.Config{})
		if res.Verdict != bmc.Covered || !bmc.Replay(inst.Netlist, res.Trace) {
			b.Fatal("trace generation failed")
		}
		b.ReportMetric(float64(res.Trace.CoverCycle+1), "cover-cycle")
	}
}

// BenchmarkFigure4_AgingLibrary regenerates the aging-aware timing
// library: the delay-degradation surface over (SP, time).
func BenchmarkFigure4_AgingLibrary(b *testing.B) {
	model := aging.Default()
	for i := 0; i < b.N; i++ {
		lib := aging.NewLibrary(cell.Lib28(), model, 10)
		worst := lib.Factor(cell.XOR2, 0)
		b.ReportMetric((worst-1)*100, "XOR-SP0-deg-%")
	}
}

// BenchmarkFigure8_DelayHistogram regenerates the per-cell delay-increase
// distribution for the ALU (the FPU variant runs inside Table 3's
// benchmark, which analyzes both units).
func BenchmarkFigure8_DelayHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := vega.NewALU(fastCfg(false))
		if _, err := w.AgingAnalysis(); err != nil {
			b.Fatal(err)
		}
		bins := w.Figure8(12)
		peak := 0.0
		for _, bin := range bins {
			if bin.Frac > peak {
				peak = bin.Frac
			}
		}
		b.ReportMetric(peak*100, "modal-bin-%")
	}
}

// BenchmarkTable3_AgingAwareSTA regenerates the aged STA summary for
// both units.
func BenchmarkTable3_AgingAwareSTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wALU := vega.NewALU(fastCfg(false))
		if _, err := wALU.AgingAnalysis(); err != nil {
			b.Fatal(err)
		}
		wFPU := vega.NewFPU(fastCfg(false))
		if _, err := wFPU.AgingAnalysis(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(wALU.STA.WNSSetup, "ALU-WNS-ps")
		b.ReportMetric(wFPU.STA.WNSSetup, "FPU-WNS-ps")
		b.ReportMetric(float64(wFPU.STA.NumSetupViolations), "FPU-setup-paths")
		b.ReportMetric(float64(wFPU.STA.NumHoldViolations), "FPU-hold-paths")
	}
}

// BenchmarkTable4_TestConstruction regenerates the error-lifting outcome
// tally for the ALU (the cheap unit; the cmd binary covers the FPU).
func BenchmarkTable4_TestConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := vega.NewALU(fastCfg(false))
		if _, err := w.ErrorLifting(); err != nil {
			b.Fatal(err)
		}
		row := core.Table4("ALU", false, w.Results)
		b.ReportMetric(row.Pct(row.S), "S-%")
		b.ReportMetric(row.Pct(row.UR), "UR-%")
	}
}

// BenchmarkTable5_SuiteSize regenerates suite size and cycle cost.
func BenchmarkTable5_SuiteSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := vega.NewALU(fastCfg(false))
		if _, err := w.ErrorLifting(); err != nil {
			b.Fatal(err)
		}
		suite := w.Suite()
		cycles, err := vega.SuiteCycles(suite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(suite.Cases)), "test-cases")
		b.ReportMetric(float64(cycles), "cycles")
	}
}

// BenchmarkTable6_DetectionQuality regenerates the detection-quality
// experiment: the ALU suite against every failing netlist in all three
// failure modes.
func BenchmarkTable6_DetectionQuality(b *testing.B) {
	w := vega.NewALU(fastCfg(false))
	if _, err := w.ErrorLifting(); err != nil {
		b.Fatal(err)
	}
	suite := w.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := w.TestQuality(suite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Pct(rows[0].Detected), "C0-detected-%")
		b.ReportMetric(rows[1].Pct(rows[1].Detected), "C1-detected-%")
		b.ReportMetric(rows[2].Pct(rows[2].Detected), "CR-detected-%")
	}
}

// BenchmarkTable7_VegaVsRandom regenerates the Vega-vs-random comparison
// (3 random seeds per iteration; the cmd binary uses 10).
func BenchmarkTable7_VegaVsRandom(b *testing.B) {
	w := vega.NewALU(fastCfg(false))
	if _, err := w.ErrorLifting(); err != nil {
		b.Fatal(err)
	}
	suite := w.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := w.VsRandom(suite, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].VegaPct, "C0-vega-%")
		b.ReportMetric(rows[0].RandomPct, "C0-random-%")
	}
}

// BenchmarkFigure9_IntegrationOverhead regenerates the profile-guided
// integration overhead over the embench suite.
func BenchmarkFigure9_IntegrationOverhead(b *testing.B) {
	w := vega.NewALU(fastCfg(false))
	if _, err := w.ErrorLifting(); err != nil {
		b.Fatal(err)
	}
	suite := w.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.Figure9(suite, "-N", 0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.MeanOverheadPct(rows), "mean-overhead-%")
	}
}

// BenchmarkSubstrate_* measure the load-bearing substrates so
// performance regressions in the simulator, solver, or CPU show up here.

func BenchmarkSubstrate_GateSim(b *testing.B) {
	m := vegaALUModule()
	s := sim.New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetInput("a", uint64(i))
		s.SetInput("b", uint64(i*3))
		s.SetInput("in_valid", 1)
		s.Step()
	}
	b.ReportMetric(float64(len(m.Cells)), "cells")
}

// BenchmarkSubstrate_GateSimPacked drives the same ALU netlist through
// the engine's 64-lane bit-parallel evaluator under random stimulus.
// The unit of work is one lane-cycle, so ns/op compares directly with
// BenchmarkSubstrate_GateSim above.
func BenchmarkSubstrate_GateSimPacked(b *testing.B) {
	m := vegaALUModule()
	e := engine.NewPacked(engine.Cached(m))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for done := 0; done < b.N; done += engine.Lanes {
		for _, p := range m.Inputs {
			for _, n := range p.Bits {
				e.SetNet(n, rng.Uint64())
			}
		}
		e.Step()
	}
	b.ReportMetric(float64(len(m.Cells)), "cells")
}

func vegaALUModule() *netlist.Netlist {
	w := vega.NewALU(vega.Config{})
	return w.Module.Netlist
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblation_FuzzVsFormal compares the §6.3 fuzzing-based
// constructor against the formal (BMC) backend on the same aging-prone
// pairs: construction time is the benchmark metric, and each iteration
// reports how many variants every backend lifted successfully.
func BenchmarkAblation_FuzzVsFormal(b *testing.B) {
	w := vega.NewALU(fastCfg(false))
	if _, err := w.AgingAnalysis(); err != nil {
		b.Fatal(err)
	}
	pairs := w.STA.Pairs
	b.Run("formal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok := 0
			for _, p := range pairs {
				for _, r := range lift.Construct(w.Module, p.Pair, p.Type, lift.Config{}) {
					if r.Outcome == lift.Success {
						ok++
					}
				}
			}
			b.ReportMetric(float64(ok), "lifted")
		}
	})
	b.Run("fuzz-guided", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok := 0
			for _, p := range pairs {
				for _, r := range lift.FuzzConstruct(w.Module, p.Pair, p.Type, lift.FuzzConfig{Seed: int64(i), Guided: true}) {
					if r.Outcome == lift.Success {
						ok++
					}
				}
			}
			b.ReportMetric(float64(ok), "lifted")
		}
	})
	b.Run("fuzz-unguided", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok := 0
			for _, p := range pairs {
				for _, r := range lift.FuzzConstruct(w.Module, p.Pair, p.Type, lift.FuzzConfig{Seed: int64(i)}) {
					if r.Outcome == lift.Success {
						ok++
					}
				}
			}
			b.ReportMetric(float64(ok), "lifted")
		}
	})
}

// BenchmarkAblation_Conditioning measures what the reset-state
// conditioning op (§3.3.5) buys: detection rate of the C=0 failure mode
// with and without it.
func BenchmarkAblation_Conditioning(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		cfg := fastCfg(false)
		cfg.Lift.DisableConditioning = disable
		w := vega.NewALU(cfg)
		if _, err := w.ErrorLifting(); err != nil {
			b.Fatal(err)
		}
		suite := w.Suite()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := w.TestQuality(suite)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].Pct(rows[0].Detected), "C0-detected-%")
		}
	}
	b.Run("with-conditioning", func(b *testing.B) { run(b, false) })
	b.Run("without-conditioning", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_PerEndpointCap measures the effect of the STA
// reporting cap on the violating-path census (Table 3 sensitivity).
func BenchmarkAblation_PerEndpointCap(b *testing.B) {
	w := vega.NewALU(fastCfg(false))
	if err := w.ProfileWorkloads(); err != nil {
		b.Fatal(err)
	}
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	for _, cap := range []int{1, 10, 40, 400} {
		b.Run(fmt.Sprintf("cap-%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := sta.Analyze(w.Module.Netlist, sta.Config{
					PeriodPs: w.Module.PeriodPs, Scale: w.Scale,
					Aged: lib, Profile: w.SPProfile, PerEndpoint: cap,
				})
				b.ReportMetric(float64(res.NumSetupViolations), "paths")
				b.ReportMetric(float64(len(res.Pairs)), "pairs")
			}
		})
	}
}

// BenchmarkOnset_FineLifetimeSweep times the workflow-level fine-grained
// onset sweep the batched multi-corner STA engine exists for: the
// `vega-sta -sweep -sweep-step 0.25` grid — 41 lifetime corners from 0
// to 10 years — resolved in one AnalyzeCorners pass over the ALU. The
// SP profile is collected once outside the timer, exactly as the
// workflow caches it across sweeps.
func BenchmarkOnset_FineLifetimeSweep(b *testing.B) {
	w := vega.NewALU(fastCfg(false))
	if err := w.ProfileWorkloads(); err != nil {
		b.Fatal(err)
	}
	grid := make([]float64, 41)
	for i := range grid {
		grid[i] = 0.25 * float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := w.LifetimeSweep(grid)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.FailureOnsetYears(pts), "onset-years")
	}
}

// BenchmarkParallelism times the two heaviest fan-out phases at -j 1 and
// -j 4 (the pair the speedup claim compares). Results are byte-identical
// at every setting — TestParallelismDeterminism proves it — so the only
// thing parallelism changes is wall-clock time. The speedup is only
// visible on a multi-core runner; on one CPU the settings time alike.
func BenchmarkParallelism(b *testing.B) {
	for _, jobs := range []int{1, 4} {
		cfg := fastCfg(false)
		cfg.Parallelism = jobs
		b.Run(fmt.Sprintf("error-lifting/j-%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := vega.NewALU(cfg)
				if _, err := w.ErrorLifting(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, jobs := range []int{1, 4} {
		cfg := fastCfg(false)
		cfg.Parallelism = jobs
		w := vega.NewALU(cfg)
		if _, err := w.ErrorLifting(); err != nil {
			b.Fatal(err)
		}
		suite := w.Suite()
		b.Run(fmt.Sprintf("test-quality/j-%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := w.TestQuality(suite)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].Pct(rows[0].Detected), "C0-detected-%")
			}
		})
	}
}
