// scale_test.go is the CI-budget end-to-end check of the million-gate
// compile path at its 10^5-cell operating point: generate a parametric
// pipelined core, round-trip it through the streaming Verilog
// writer/parser, compile it for both the evaluation engine and the
// timing engine, and cross-check incremental re-timing against full
// multi-corner STA on random SP deltas. The 10^6-cell point runs in the
// bench harness (bench_scale_test.go), not here.
package vega_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
	"repro/internal/synth"
)

func TestScalePipelineEndToEnd(t *testing.T) {
	const target = 100_000
	nl := synth.PipelineForCells(target).Build()
	st := nl.Stats()
	if st.Cells < target*9/10 || st.Cells > target*11/10 {
		t.Fatalf("PipelineForCells(%d) built %d cells", target, st.Cells)
	}

	// Streaming Verilog round trip preserves the netlist shape.
	var buf bytes.Buffer
	if err := nl.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ParseVerilogReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != st {
		t.Fatalf("round trip changed the netlist: %+v -> %+v", st, back.Stats())
	}

	// Both compile paths accept the core.
	prog := engine.Compile(nl)
	if len(prog.Ops) != st.Comb+st.ClockCells {
		t.Fatalf("compiled %d ops, want %d comb + %d clock", len(prog.Ops), st.Comb, st.ClockCells)
	}
	if len(prog.DFFs) != st.DFFs {
		t.Fatalf("compiled %d DFFs, want %d", len(prog.DFFs), st.DFFs)
	}

	// Multi-corner STA with incremental cross-check: every update's
	// Results must deep-equal a from-scratch AnalyzeCorners over the
	// same mutated profile.
	lib := cell.Lib28()
	rng := rand.New(rand.NewSource(5))
	prof := &sim.Profile{Cycles: 1, SP: make([]float64, nl.NumNets)}
	for i := range prof.SP {
		prof.SP[i] = rng.Float64()
	}
	cfg := sta.BatchConfig{
		PeriodPs:    sta.CriticalDelay(nl, lib) * 1.02,
		Base:        lib,
		Model:       aging.Default(),
		Profile:     prof,
		PerEndpoint: 40,
		MaxPaths:    500,
	}
	corners := []sta.Corner{{}, {Years: 5}, {Years: 10}}
	inc := sta.NewIncremental(nl, cfg, corners)
	defer inc.Close()
	if got, want := inc.Results(), sta.AnalyzeCorners(nl, cfg, corners); !reflect.DeepEqual(got, want) {
		t.Fatal("initial incremental Results diverge from AnalyzeCorners")
	}
	for round := 0; round < 3; round++ {
		changed := make([]netlist.NetID, 50)
		for i := range changed {
			n := netlist.NetID(rng.Intn(nl.NumNets))
			prof.SP[n] = rng.Float64()
			changed[i] = n
		}
		got := inc.UpdateSP(changed)
		want := sta.AnalyzeCorners(nl, cfg, corners)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: incremental diverges from full analysis", round)
		}
		if inc.LastRetimed >= len(nl.Topo())/2 {
			t.Errorf("round %d: cone covered %d of %d ops — not sparse", round, inc.LastRetimed, len(nl.Topo()))
		}
	}
}
