// Package vega is the public API of this repository: a from-scratch Go
// reproduction of "Proactive Runtime Detection of Aging-Related Silent
// Data Corruptions: A Bottom-Up Approach" (ASPLOS 2024).
//
// Vega is a three-phase workflow that turns gate-level knowledge of
// transistor aging into tiny software test cases an application can run
// continuously:
//
//  1. Aging Analysis — simulate representative workloads on the
//     synthesized netlist, collect a signal-probability profile, and run
//     aging-aware static timing analysis to find the signal paths that
//     will violate setup/hold constraints after years of BTI stress.
//  2. Error Lifting — model each violation logically (Eq. 2/3 of the
//     paper), clone the affected cone into a shadow replica, and use
//     bounded model checking to derive an input trace that provably
//     exposes the fault; then lower the trace to RISC-V instructions.
//  3. Test Integration — package the tests as a software aging library,
//     or embed them into an application at a profile-chosen basic block
//     under an overhead budget.
//
// The full pipeline runs against gate-level ALU and FPU models of a
// CV32E40P-class RISC-V core, synthesized, aged, verified, and executed
// entirely inside this module (see DESIGN.md for the substitutions made
// for the paper's proprietary EDA toolchain).
//
// Quick start:
//
//	w := vega.NewALU(vega.Config{})
//	sta, _ := w.AgingAnalysis()              // phase 1
//	results, _ := w.ErrorLifting()           // phase 2
//	suite := w.Suite()                       // the generated tests
//	rows := w.TestQuality(suite)             // run them against aged silicon
package vega

import (
	"repro/internal/core"
	"repro/internal/lift"
)

// Config tunes a workflow run; the zero value selects the paper's
// defaults (10-year lifetime, all embench workloads, no mitigation).
type Config = core.Config

// Workflow drives the three phases for one hardware unit.
type Workflow = core.Workflow

// Suite is an ordered collection of generated test cases.
type Suite = lift.Suite

// LiftConfig tunes the Error Lifting phase.
type LiftConfig = lift.Config

// NewALU creates a workflow for the CV32E40P-style ALU (167 MHz).
func NewALU(cfg Config) *Workflow { return core.NewALU(cfg) }

// NewFPU creates a workflow for the FPNew-style FPU (250 MHz).
func NewFPU(cfg Config) *Workflow { return core.NewFPU(cfg) }

// MergeSuites concatenates per-unit suites for joint integration.
func MergeSuites(suites ...*Suite) *Suite { return core.MergeSuites(suites...) }

// SuiteCycles measures a suite's one-pass cycle cost on the healthy CPU.
func SuiteCycles(s *Suite) (uint64, error) { return core.SuiteCycles(s) }
